// Tests for src/engine: the thread pool, the graph sharder's partition
// invariants, and the parallel Gibbs engine's determinism contract —
// num_threads == 1 is bit-identical to the sequential sampler, and
// num_threads == N replays the exact same chain run over run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/candidate_space.h"
#include "core/model.h"
#include "core/pow_table.h"
#include "core/random_models.h"
#include "core/sampler.h"
#include "engine/graph_sharder.h"
#include "engine/parallel_gibbs.h"
#include "engine/thread_pool.h"
#include "obs/fit_profile.h"
#include "obs/metrics.h"
#include "synth/world_generator.h"

namespace mlp {
namespace engine {
namespace {

// ------------------------------------------------------------ thread pool

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, ClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DrainFinishesQueuedAndInFlightWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(pool.Submit([&counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      counter.fetch_add(1);
    }));
  }
  pool.Drain();
  // Everything admitted before Drain completed; nothing was dropped.
  EXPECT_EQ(counter.load(), 50);
  EXPECT_TRUE(pool.draining());
}

TEST(ThreadPoolTest, SubmitAfterDrainIsRejected) {
  ThreadPool pool(2);
  pool.Drain();
  std::atomic<int> counter{0};
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
  // The rejected task never runs, and a second Drain is a safe no-op.
  pool.Drain();
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, DrainIsSafeFromMultipleThreads) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  std::thread other([&pool] { pool.Drain(); });
  pool.Drain();
  other.join();
  EXPECT_EQ(counter.load(), 100);
}

// ---------------------------------------------------------- graph sharder

synth::SyntheticWorld TestWorld(int num_users, uint64_t seed) {
  synth::WorldConfig config;
  config.num_users = num_users;
  config.seed = seed;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  EXPECT_TRUE(world.ok());
  return std::move(*world);
}

struct FitHarness {
  explicit FitHarness(const synth::SyntheticWorld& world) {
    input.gazetteer = world.gazetteer.get();
    input.graph = world.graph.get();
    input.distances = world.distances.get();
    referents = world.vocab->ReferentTable();
    input.venue_referents = &referents;
    input.observed_home.reserve(world.graph->num_users());
    for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
      input.observed_home.push_back(world.graph->user(u).registered_city);
    }
  }
  core::ModelInput input;
  std::vector<std::vector<geo::CityId>> referents;
};

TEST(GraphSharderTest, EveryUserAndEdgeAssignedExactlyOnce) {
  synth::SyntheticWorld world = TestWorld(400, 7);
  const graph::SocialGraph& graph = *world.graph;
  for (int k : {1, 2, 3, 8}) {
    std::vector<Shard> shards = GraphSharder::Partition(graph, k);
    ASSERT_EQ(static_cast<int>(shards.size()), k);

    std::set<graph::UserId> users;
    std::set<graph::EdgeId> following, tweeting;
    std::size_t user_total = 0, follow_total = 0, tweet_total = 0;
    for (const Shard& shard : shards) {
      users.insert(shard.users.begin(), shard.users.end());
      following.insert(shard.following.begin(), shard.following.end());
      tweeting.insert(shard.tweeting.begin(), shard.tweeting.end());
      user_total += shard.users.size();
      follow_total += shard.following.size();
      tweet_total += shard.tweeting.size();
    }
    // Exactly once: no duplicates (set size == summed size) and complete.
    EXPECT_EQ(user_total, users.size());
    EXPECT_EQ(follow_total, following.size());
    EXPECT_EQ(tweet_total, tweeting.size());
    EXPECT_EQ(static_cast<int>(users.size()), graph.num_users());
    EXPECT_EQ(static_cast<int>(following.size()), graph.num_following());
    EXPECT_EQ(static_cast<int>(tweeting.size()), graph.num_tweeting());
  }
}

TEST(GraphSharderTest, EdgesFollowTheirOwningUser) {
  synth::SyntheticWorld world = TestWorld(200, 11);
  const graph::SocialGraph& graph = *world.graph;
  std::vector<Shard> shards = GraphSharder::Partition(graph, 4);
  for (const Shard& shard : shards) {
    std::set<graph::UserId> members(shard.users.begin(), shard.users.end());
    for (graph::EdgeId s : shard.following) {
      EXPECT_TRUE(members.count(graph.following(s).follower));
    }
    for (graph::EdgeId t : shard.tweeting) {
      EXPECT_TRUE(members.count(graph.tweeting(t).user));
    }
  }
}

TEST(GraphSharderTest, ShardWeightsWithinTwiceBalanced) {
  synth::SyntheticWorld world = TestWorld(600, 3);
  const graph::SocialGraph& graph = *world.graph;
  for (int k : {2, 4, 8}) {
    std::vector<Shard> shards = GraphSharder::Partition(graph, k);
    std::size_t total = 0;
    for (const Shard& shard : shards) total += shard.Weight();
    double balanced = static_cast<double>(total) / k;
    for (const Shard& shard : shards) {
      EXPECT_LE(static_cast<double>(shard.Weight()), 2.0 * balanced)
          << "shard overloaded at k=" << k;
    }
  }
}

// Max shard cost relative to the mean shard cost under a given per-user
// cost vector.
double MaxOverMeanCost(const std::vector<Shard>& shards,
                       const std::vector<double>& cost) {
  double total = 0.0, worst = 0.0;
  for (const Shard& shard : shards) {
    double load = 0.0;
    for (graph::UserId u : shard.users) load += cost[u];
    total += load;
    worst = std::max(worst, load);
  }
  return total > 0.0 ? worst / (total / shards.size()) : 1.0;
}

// Cost-weighted LPT under a power-law degree distribution: per-user costs
// spanning several orders of magnitude (celebrity users dominate, like the
// blocked update's |cand_i|·|cand_j| inner loops) must still land within
// 1.25x of the mean shard cost.
TEST(GraphSharderTest, PowerLawCostsBalanceWithin125PercentOfMean) {
  synth::SyntheticWorld world = TestWorld(600, 19);
  const graph::SocialGraph& graph = *world.graph;
  // Deterministic Zipf-ish synthetic cost: heavy head, long tail.
  std::vector<double> cost(graph.num_users());
  for (graph::UserId u = 0; u < graph.num_users(); ++u) {
    cost[u] = 1.0 + 50000.0 / static_cast<double>(1 + u);
  }
  for (int k : {2, 4, 8}) {
    std::vector<Shard> shards = GraphSharder::Partition(graph, k, cost);
    EXPECT_LE(MaxOverMeanCost(shards, cost), 1.25)
        << "power-law shard imbalance at k=" << k;
  }
}

// Mid-fit cost re-estimation: after a prune shrinks some users' candidate
// rows (and thereby their sampling cost) far more than others', the shards
// derived from the OLD costs can be arbitrarily unbalanced — re-running
// the sharder over the new costs must restore <= 1.25x of the mean.
TEST(GraphSharderTest, CostReestimationAfterPruneRebalances) {
  synth::SyntheticWorld world = TestWorld(500, 23);
  FitHarness harness(world);
  const graph::SocialGraph& graph = *harness.input.graph;
  core::MlpConfig config;
  core::CandidateSpace space =
      core::CandidateSpace::Build(harness.input, config);

  auto edge_costs = [&](const core::CandidateSpace& s) {
    std::vector<double> cost(graph.num_users(), 0.0);
    for (graph::EdgeId e = 0; e < graph.num_following(); ++e) {
      const graph::FollowingEdge& edge = graph.following(e);
      cost[edge.follower] +=
          static_cast<double>(s.view(edge.follower).size()) *
          static_cast<double>(s.view(edge.friend_user).size());
    }
    for (graph::EdgeId t = 0; t < graph.num_tweeting(); ++t) {
      cost[graph.tweeting(t).user] +=
          static_cast<double>(s.view(graph.tweeting(t).user).size());
    }
    return cost;
  };

  const int k = 4;
  std::vector<double> cost_before = edge_costs(space);
  std::vector<Shard> shards = GraphSharder::Partition(graph, k, cost_before);
  EXPECT_LE(MaxOverMeanCost(shards, cost_before), 1.25);

  // Simulate a mid-fit prune: keep only the first two candidates of every
  // even-id user (their inner loops collapse; odd users keep full rows).
  core::CandidateActivation activation;
  activation.active.assign(space.full_size(), 1);
  activation.layout_version = 1;
  int64_t slot = 0;
  for (graph::UserId u = 0; u < space.num_users(); ++u) {
    for (int l = 0; l < space.full_count(u); ++l, ++slot) {
      if (u % 2 == 0 && l >= 2) activation.active[slot] = 0;
    }
  }
  ASSERT_TRUE(space.RestoreActivation(activation).ok());
  std::vector<double> cost_after = edge_costs(space);

  // Re-estimated shards track the shrunken inner loops.
  std::vector<Shard> resharded = GraphSharder::Partition(graph, k, cost_after);
  EXPECT_LE(MaxOverMeanCost(resharded, cost_after), 1.25)
      << "re-estimated LPT lost balance after the prune";
}

// --------------------------------------------------- parallel Gibbs engine

void ExpectIdenticalResults(const core::MlpResult& a,
                            const core::MlpResult& b) {
  ASSERT_EQ(a.home.size(), b.home.size());
  EXPECT_EQ(a.home, b.home);
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (size_t u = 0; u < a.profiles.size(); ++u) {
    EXPECT_EQ(a.profiles[u].entries(), b.profiles[u].entries()) << "user " << u;
  }
  ASSERT_EQ(a.following.size(), b.following.size());
  for (size_t s = 0; s < a.following.size(); ++s) {
    EXPECT_EQ(a.following[s].x, b.following[s].x);
    EXPECT_EQ(a.following[s].y, b.following[s].y);
    EXPECT_EQ(a.following[s].noise_prob, b.following[s].noise_prob);
  }
  ASSERT_EQ(a.tweeting.size(), b.tweeting.size());
  for (size_t k = 0; k < a.tweeting.size(); ++k) {
    EXPECT_EQ(a.tweeting[k].z, b.tweeting[k].z);
    EXPECT_EQ(a.tweeting[k].noise_prob, b.tweeting[k].noise_prob);
  }
}

// The engine at num_threads == 1 must consume the caller's RNG exactly like
// the raw sequential sampler: bit-identical chain, trace and result.
TEST(ParallelGibbsEngineTest, OneThreadBitIdenticalToSequentialSampler) {
  synth::SyntheticWorld world = TestWorld(250, 42);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 3;
  config.sampling_iterations = 4;

  core::CandidateSpace space = core::CandidateSpace::Build(harness.input, config);
  core::RandomModels random_models =
      core::RandomModels::Learn(*harness.input.graph);
  core::PowTable pow_table(harness.input.distances, config.alpha,
                           config.distance_floor_miles);

  auto run = [&](bool through_engine) {
    core::GibbsSampler sampler(&harness.input, &config, &space,
                               &random_models, &pow_table);
    ParallelGibbsEngine engine(&sampler, &harness.input, &config);
    Pcg32 rng(config.seed, 0x5bd1e995u);
    if (through_engine) {
      engine.Initialize(&rng);
    } else {
      sampler.Initialize(&rng);
    }
    for (int it = 0; it < config.burn_in_iterations; ++it) {
      through_engine ? engine.RunSweep(&rng) : sampler.RunSweep(&rng);
    }
    sampler.ResetAccumulators();
    for (int it = 0; it < config.sampling_iterations; ++it) {
      through_engine ? engine.RunSweep(&rng) : sampler.RunSweep(&rng);
      sampler.AccumulateSample();
    }
    return sampler.BuildResult();
  };

  core::MlpResult sequential = run(false);
  core::MlpResult engine_one_thread = run(true);
  ExpectIdenticalResults(sequential, engine_one_thread);
  EXPECT_EQ(sequential.home_change_per_sweep,
            engine_one_thread.home_change_per_sweep);
}

// Whole-model equivalence: Fit with num_threads == 1 equals Fit with the
// engine fields untouched (the default path).
TEST(ParallelGibbsEngineTest, FitOneThreadMatchesDefault) {
  synth::SyntheticWorld world = TestWorld(200, 5);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 2;
  config.sampling_iterations = 3;

  Result<core::MlpResult> base = core::MlpModel(config).Fit(harness.input);
  ASSERT_TRUE(base.ok());
  config.num_threads = 1;
  Result<core::MlpResult> one = core::MlpModel(config).Fit(harness.input);
  ASSERT_TRUE(one.ok());
  ExpectIdenticalResults(*base, *one);
}

// Same seed and thread count twice -> identical homes and profiles, no
// matter how the OS schedules the workers.
TEST(ParallelGibbsEngineTest, MultiThreadRunsAreDeterministic) {
  synth::SyntheticWorld world = TestWorld(250, 13);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 3;
  config.sampling_iterations = 3;
  config.num_threads = 3;

  Result<core::MlpResult> first = core::MlpModel(config).Fit(harness.input);
  ASSERT_TRUE(first.ok());
  Result<core::MlpResult> second = core::MlpModel(config).Fit(harness.input);
  ASSERT_TRUE(second.ok());
  ExpectIdenticalResults(*first, *second);
}

// Determinism must survive the dynamic scheduler AND a mid-fit reshard:
// with pruning aggressive enough to fire (patience 1), ReshardByCost
// repartitions the sub-shards and resets the cost EWMAs mid-chain. The
// fold-revert protocol makes the wall-clock-driven work queue semantically
// neutral, so two runs still replay the exact same chain.
TEST(ParallelGibbsEngineTest, MultiThreadDeterministicUnderRebalancing) {
  synth::SyntheticWorld world = TestWorld(250, 29);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 5;
  config.sampling_iterations = 3;
  config.num_threads = 3;
  config.prune_floor = 0.02;
  config.prune_patience = 1;

  const std::map<std::string, uint64_t> before =
      obs::Registry::Global().CounterValues();
  Result<core::MlpResult> first = core::MlpModel(config).Fit(harness.input);
  ASSERT_TRUE(first.ok());
  const std::map<std::string, uint64_t> after =
      obs::Registry::Global().CounterValues();
  // The test only means something if a reshard actually happened.
  auto rebalance_ns = [](const std::map<std::string, uint64_t>& counters) {
    auto it = counters.find(obs::kFitRebalanceNs);
    return it == counters.end() ? uint64_t{0} : it->second;
  };
  ASSERT_GT(rebalance_ns(after), rebalance_ns(before))
      << "prune never fired; tighten prune_floor so the reshard path runs";

  Result<core::MlpResult> second = core::MlpModel(config).Fit(harness.input);
  ASSERT_TRUE(second.ok());
  ExpectIdenticalResults(*first, *second);
}

// The delta merge must keep the global counts exactly consistent: every
// per-user row sums to its total, and nothing goes negative.
TEST(ParallelGibbsEngineTest, MergedCountsStayConsistent) {
  synth::SyntheticWorld world = TestWorld(250, 21);
  FitHarness harness(world);
  core::MlpConfig config;
  config.num_threads = 4;

  core::CandidateSpace space = core::CandidateSpace::Build(harness.input, config);
  core::RandomModels random_models =
      core::RandomModels::Learn(*harness.input.graph);
  core::PowTable pow_table(harness.input.distances, config.alpha,
                           config.distance_floor_miles);
  core::GibbsSampler sampler(&harness.input, &config, &space, &random_models,
                             &pow_table);
  ParallelGibbsEngine engine(&sampler, &harness.input, &config);
  Pcg32 rng(config.seed, 0x5bd1e995u);
  engine.Initialize(&rng);
  for (int it = 0; it < 4; ++it) engine.RunSweep(&rng);
  engine.Synchronize();

  const core::SuffStatsArena& stats = sampler.stats();
  const core::SuffStatsLayout& layout = sampler.layout();
  double phi_mass = 0.0;
  for (graph::UserId u = 0; u < layout.num_users; ++u) {
    const double* phi_u = stats.phi_row(u);
    double row = 0.0;
    for (int l = 0; l < layout.candidate_count(u); ++l) {
      EXPECT_GE(phi_u[l], 0.0);
      row += phi_u[l];
    }
    EXPECT_DOUBLE_EQ(row, stats.phi_total[u]) << "user " << u;
    phi_mass += row;
  }
  // Location-based relationships contribute two phi counts (following) or
  // one (tweeting); noise-flagged ones contribute none. The ceiling is
  // every relationship location-based.
  EXPECT_LE(phi_mass, 2.0 * harness.input.graph->num_following() +
                          harness.input.graph->num_tweeting());
  EXPECT_GT(phi_mass, 0.0);

  double venue_mass = 0.0;
  for (int32_t l = 0; l < layout.num_locations; ++l) {
    const double* venues = stats.venue_row(l);
    double row = 0.0;
    for (int v = 0; v < layout.num_venues; ++v) {
      EXPECT_GE(venues[v], 0.0);
      row += venues[v];
    }
    EXPECT_DOUBLE_EQ(row, stats.venue_counts_total[l]) << "location " << l;
    venue_mass += row;
  }
  EXPECT_LE(venue_mass, harness.input.graph->num_tweeting());
}

// sync_every_sweeps > 1 defers merges; Synchronize() must land them before
// anyone reads global counts, and Fit must still produce a valid result.
TEST(ParallelGibbsEngineTest, DeferredSyncStillProducesValidFit) {
  synth::SyntheticWorld world = TestWorld(200, 33);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 4;
  config.sampling_iterations = 3;
  config.num_threads = 2;
  config.sync_every_sweeps = 3;

  Result<core::MlpResult> result = core::MlpModel(config).Fit(harness.input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<int>(result->home.size()),
            harness.input.graph->num_users());
  for (geo::CityId home : result->home) {
    EXPECT_NE(home, geo::kInvalidCity);
  }
}

}  // namespace
}  // namespace engine
}  // namespace mlp
