// Tests for src/eval: the paper's measures (ACC@m, AAD, DP/DR@K,
// relationship accuracy), k-fold machinery, and the method adapters.

#include <gtest/gtest.h>

#include "eval/cross_validation.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "synth/world_generator.h"

namespace mlp {
namespace eval {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dist_ = std::make_unique<geo::CityDistanceMatrix>(gaz_, 1.0);
    la_ = gaz_.Find("Los Angeles", "CA");
    sm_ = gaz_.Find("Santa Monica", "CA");     // ~15 mi from LA
    sd_ = gaz_.Find("San Diego", "CA");        // ~110 mi from LA
    ny_ = gaz_.Find("New York", "NY");
    austin_ = gaz_.Find("Austin", "TX");
  }
  geo::Gazetteer gaz_ = geo::Gazetteer::FromEmbedded();
  std::unique_ptr<geo::CityDistanceMatrix> dist_;
  geo::CityId la_, sm_, sd_, ny_, austin_;
};

// ------------------------------------------------------------------ ACC@m

TEST_F(MetricsTest, ExactMatchesCount) {
  std::vector<geo::CityId> pred = {la_, ny_};
  std::vector<geo::CityId> truth = {la_, austin_};
  EXPECT_DOUBLE_EQ(AccuracyWithin(pred, truth, {0, 1}, *dist_, 100.0), 0.5);
}

TEST_F(MetricsTest, NearMissWithinThresholdCounts) {
  std::vector<geo::CityId> pred = {sm_};
  std::vector<geo::CityId> truth = {la_};
  EXPECT_DOUBLE_EQ(AccuracyWithin(pred, truth, {0}, *dist_, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(AccuracyWithin(pred, truth, {0}, *dist_, 5.0), 0.0);
}

TEST_F(MetricsTest, InvalidPredictionIsWrong) {
  std::vector<geo::CityId> pred = {geo::kInvalidCity};
  std::vector<geo::CityId> truth = {la_};
  EXPECT_DOUBLE_EQ(AccuracyWithin(pred, truth, {0}, *dist_, 1e9), 0.0);
}

TEST_F(MetricsTest, EmptyUserSetGivesZero) {
  EXPECT_DOUBLE_EQ(AccuracyWithin({}, {}, {}, *dist_, 100.0), 0.0);
}

TEST_F(MetricsTest, OnlyListedUsersScored) {
  std::vector<geo::CityId> pred = {la_, ny_};
  std::vector<geo::CityId> truth = {la_, austin_};
  EXPECT_DOUBLE_EQ(AccuracyWithin(pred, truth, {0}, *dist_, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(AccuracyWithin(pred, truth, {1}, *dist_, 100.0), 0.0);
}

TEST_F(MetricsTest, AadCurveIsMonotone) {
  std::vector<geo::CityId> pred = {la_, sm_, sd_, ny_};
  std::vector<geo::CityId> truth = {la_, la_, la_, la_};
  std::vector<double> miles = {0.0, 20.0, 50.0, 120.0, 3000.0};
  std::vector<double> curve =
      AccumulativeAccuracyCurve(pred, truth, {0, 1, 2, 3}, *dist_, miles);
  ASSERT_EQ(curve.size(), miles.size());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  EXPECT_DOUBLE_EQ(curve[0], 0.25);        // exact only
  EXPECT_DOUBLE_EQ(curve[1], 0.5);         // + Santa Monica
  EXPECT_DOUBLE_EQ(curve[3], 0.75);        // + San Diego
  EXPECT_DOUBLE_EQ(curve.back(), 1.0);     // everything
}

// ------------------------------------------------------------------ DP/DR

TEST_F(MetricsTest, PerfectPredictionScoresOne) {
  std::vector<std::vector<geo::CityId>> pred = {{la_, austin_}};
  std::vector<std::vector<geo::CityId>> truth = {{la_, austin_}};
  MultiLocationScores s =
      DistancePrecisionRecall(pred, truth, {0}, *dist_, 100.0);
  EXPECT_DOUBLE_EQ(s.dp, 1.0);
  EXPECT_DOUBLE_EQ(s.dr, 1.0);
}

TEST_F(MetricsTest, NearbyPredictionCountsTowardBoth) {
  // Paper: "a predicted location (Santa Monica) may be different from but
  // fairly close to a true location (Beverly Hills)".
  std::vector<std::vector<geo::CityId>> pred = {{sm_}};
  std::vector<std::vector<geo::CityId>> truth = {{la_}};
  MultiLocationScores s =
      DistancePrecisionRecall(pred, truth, {0}, *dist_, 100.0);
  EXPECT_DOUBLE_EQ(s.dp, 1.0);
  EXPECT_DOUBLE_EQ(s.dr, 1.0);
}

TEST_F(MetricsTest, OneRegionPredictionsHalveRecall) {
  // Predicting LA twice for an {LA, Austin} user: DP=1 (both close to a
  // truth), DR=0.5 (Austin never covered) — the baselines' failure mode.
  std::vector<std::vector<geo::CityId>> pred = {{la_, sm_}};
  std::vector<std::vector<geo::CityId>> truth = {{la_, austin_}};
  MultiLocationScores s =
      DistancePrecisionRecall(pred, truth, {0}, *dist_, 100.0);
  EXPECT_DOUBLE_EQ(s.dp, 1.0);
  EXPECT_DOUBLE_EQ(s.dr, 0.5);
}

TEST_F(MetricsTest, WrongPredictionsLowerPrecision) {
  std::vector<std::vector<geo::CityId>> pred = {{ny_, austin_}};
  std::vector<std::vector<geo::CityId>> truth = {{la_, austin_}};
  MultiLocationScores s =
      DistancePrecisionRecall(pred, truth, {0}, *dist_, 100.0);
  EXPECT_DOUBLE_EQ(s.dp, 0.5);
  EXPECT_DOUBLE_EQ(s.dr, 0.5);
}

TEST_F(MetricsTest, EmptyPredictionScoresZero) {
  std::vector<std::vector<geo::CityId>> pred = {{}};
  std::vector<std::vector<geo::CityId>> truth = {{la_}};
  MultiLocationScores s =
      DistancePrecisionRecall(pred, truth, {0}, *dist_, 100.0);
  EXPECT_DOUBLE_EQ(s.dp, 0.0);
  EXPECT_DOUBLE_EQ(s.dr, 0.0);
}

TEST_F(MetricsTest, AveragesAcrossUsers) {
  std::vector<std::vector<geo::CityId>> pred = {{la_}, {ny_}};
  std::vector<std::vector<geo::CityId>> truth = {{la_}, {la_}};
  MultiLocationScores s =
      DistancePrecisionRecall(pred, truth, {0, 1}, *dist_, 100.0);
  EXPECT_DOUBLE_EQ(s.dp, 0.5);
  EXPECT_DOUBLE_EQ(s.dr, 0.5);
}

// ------------------------------------------------- relationship accuracy

TEST_F(MetricsTest, RelationshipNeedsBothEndpointsRight) {
  std::vector<core::FollowingExplanation> pred(2);
  pred[0] = {la_, austin_, 0.0};
  pred[1] = {la_, ny_, 0.0};
  std::vector<std::pair<geo::CityId, geo::CityId>> truth = {
      {sm_, austin_},  // x within 100mi, y exact → correct
      {la_, austin_},  // y wrong → incorrect
  };
  EXPECT_DOUBLE_EQ(RelationshipAccuracy(pred, truth, {0, 1}, *dist_, 100.0),
                   0.5);
  EXPECT_DOUBLE_EQ(RelationshipAccuracy(pred, truth, {0}, *dist_, 100.0),
                   1.0);
  // Tighter threshold: Santa Monica vs LA still inside 20mi.
  EXPECT_DOUBLE_EQ(RelationshipAccuracy(pred, truth, {0}, *dist_, 20.0), 1.0);
  EXPECT_DOUBLE_EQ(RelationshipAccuracy(pred, truth, {0}, *dist_, 5.0), 0.0);
}

TEST_F(MetricsTest, RelationshipInvalidAssignmentWrong) {
  std::vector<core::FollowingExplanation> pred(1);
  pred[0] = {geo::kInvalidCity, austin_, 0.0};
  std::vector<std::pair<geo::CityId, geo::CityId>> truth = {{la_, austin_}};
  EXPECT_DOUBLE_EQ(RelationshipAccuracy(pred, truth, {0}, *dist_, 1e9), 0.0);
}

// ------------------------------------------------------- cross validation

TEST(CrossValidationTest, FoldsPartitionLabeledUsers) {
  std::vector<geo::CityId> registered = {1, 2, geo::kInvalidCity, 3,
                                         4, 5, geo::kInvalidCity, 6};
  FoldAssignment folds = MakeKFolds(registered, 3, 42);
  EXPECT_EQ(folds.num_folds, 3);
  int assigned = 0;
  for (size_t u = 0; u < registered.size(); ++u) {
    if (registered[u] == geo::kInvalidCity) {
      EXPECT_EQ(folds.fold_of_user[u], -1);
    } else {
      EXPECT_GE(folds.fold_of_user[u], 0);
      EXPECT_LT(folds.fold_of_user[u], 3);
      ++assigned;
    }
  }
  EXPECT_EQ(assigned, 6);
  // Folds are near-equal: 2 users each.
  for (int f = 0; f < 3; ++f) {
    EXPECT_EQ(folds.TestUsers(f).size(), 2u);
  }
}

TEST(CrossValidationTest, MaskedHomesHideExactlyTheFold) {
  std::vector<geo::CityId> registered = {1, 2, 3, 4, 5};
  FoldAssignment folds = MakeKFolds(registered, 5, 7);
  for (int f = 0; f < 5; ++f) {
    std::vector<geo::CityId> masked = folds.MaskedHomes(registered, f);
    int hidden = 0;
    for (size_t u = 0; u < registered.size(); ++u) {
      if (masked[u] == geo::kInvalidCity) {
        ++hidden;
        EXPECT_EQ(folds.fold_of_user[u], f);
      } else {
        EXPECT_EQ(masked[u], registered[u]);
      }
    }
    EXPECT_EQ(hidden, 1);
  }
}

TEST(CrossValidationTest, DeterministicGivenSeed) {
  std::vector<geo::CityId> registered(100, 1);
  FoldAssignment a = MakeKFolds(registered, 5, 9);
  FoldAssignment b = MakeKFolds(registered, 5, 9);
  EXPECT_EQ(a.fold_of_user, b.fold_of_user);
  FoldAssignment c = MakeKFolds(registered, 5, 10);
  EXPECT_NE(a.fold_of_user, c.fold_of_user);
}

// ----------------------------------------------------------------- methods

TEST(MethodsTest, StandardLineupHasPaperOrder) {
  std::vector<NamedMethod> lineup = StandardLineup(core::MlpConfig{});
  ASSERT_EQ(lineup.size(), 5u);
  EXPECT_EQ(lineup[0].name, "BaseU");
  EXPECT_EQ(lineup[1].name, "BaseC");
  EXPECT_EQ(lineup[2].name, "MLP_U");
  EXPECT_EQ(lineup[3].name, "MLP_C");
  EXPECT_EQ(lineup[4].name, "MLP");
}

TEST(MethodsTest, AdaptersProduceConsistentOutput) {
  synth::WorldConfig config;
  config.num_users = 600;
  config.seed = 5;
  synth::SyntheticWorld world =
      std::move(synth::GenerateWorld(config).ValueOrDie());
  auto referents = world.vocab->ReferentTable();
  std::vector<geo::CityId> registered = RegisteredHomes(*world.graph);
  FoldAssignment folds = MakeKFolds(registered, 5, 1);

  core::ModelInput input;
  input.gazetteer = world.gazetteer.get();
  input.graph = world.graph.get();
  input.distances = world.distances.get();
  input.venue_referents = &referents;
  input.observed_home = folds.MaskedHomes(registered, 0);

  core::MlpConfig mlp_config;
  mlp_config.burn_in_iterations = 4;
  mlp_config.sampling_iterations = 4;
  for (const NamedMethod& nm : StandardLineup(mlp_config)) {
    Result<MethodOutput> out = nm.method(input);
    ASSERT_TRUE(out.ok()) << nm.name;
    EXPECT_EQ(static_cast<int>(out->home.size()), world.graph->num_users())
        << nm.name;
    EXPECT_EQ(out->profiles.size(), out->home.size()) << nm.name;
    for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
      if (!out->profiles[u].empty()) {
        EXPECT_EQ(out->profiles[u].Home(), out->home[u]) << nm.name;
      }
    }
  }
}

}  // namespace
}  // namespace eval
}  // namespace mlp
