// Unit tests for src/geo: haversine math, the embedded gazetteer, state
// normalization, grid index radius queries, and the distance matrix.

#include <cmath>

#include <gtest/gtest.h>

#include "geo/distance_matrix.h"
#include "geo/gazetteer.h"
#include "geo/grid_index.h"
#include "geo/latlon.h"
#include "geo/us_states.h"

namespace mlp {
namespace geo {
namespace {

// Well-known reference distances (city center to city center, miles).
constexpr double kLaToSf = 347.0;     // Los Angeles – San Francisco
constexpr double kNyToLa = 2445.0;    // New York – Los Angeles
constexpr double kAustinToRr = 17.0;  // Austin – Round Rock

// ---------------------------------------------------------------- latlon

TEST(LatLonTest, ZeroDistanceToSelf) {
  LatLon p{34.05, -118.24};
  EXPECT_DOUBLE_EQ(HaversineMiles(p, p), 0.0);
}

TEST(LatLonTest, HaversineIsSymmetric) {
  LatLon a{34.05, -118.24}, b{40.71, -74.01};
  EXPECT_DOUBLE_EQ(HaversineMiles(a, b), HaversineMiles(b, a));
}

TEST(LatLonTest, KnownDistanceLaToNy) {
  LatLon la{34.05, -118.24}, ny{40.71, -74.01};
  EXPECT_NEAR(HaversineMiles(la, ny), kNyToLa, 30.0);
}

TEST(LatLonTest, OneDegreeLatitudeIsAbout69Miles) {
  LatLon a{30.0, -97.0}, b{31.0, -97.0};
  EXPECT_NEAR(HaversineMiles(a, b), 69.1, 0.5);
}

TEST(LatLonTest, ApproxMilesCloseToHaversineAtShortRange) {
  LatLon a{34.05, -118.24}, b{34.42, -119.70};  // LA – Santa Barbara
  double exact = HaversineMiles(a, b);
  double approx = ApproxMiles(a, b);
  EXPECT_NEAR(approx, exact, exact * 0.01 + 0.5);
}

TEST(LatLonTest, MilesToDegreesRoundtrip) {
  double deg = MilesToLatDegrees(69.1);
  EXPECT_NEAR(deg, 1.0, 0.01);
  // Longitude degrees stretch with latitude.
  EXPECT_GT(MilesToLonDegrees(100.0, 60.0), MilesToLonDegrees(100.0, 10.0));
}

TEST(LatLonTest, BoundingBoxContainment) {
  LatLon lo{30.0, -120.0}, hi{40.0, -100.0};
  EXPECT_TRUE(InBoundingBox(LatLon{35.0, -110.0}, lo, hi));
  EXPECT_TRUE(InBoundingBox(lo, lo, hi));  // inclusive edges
  EXPECT_FALSE(InBoundingBox(LatLon{45.0, -110.0}, lo, hi));
  EXPECT_FALSE(InBoundingBox(LatLon{35.0, -90.0}, lo, hi));
}

// ---------------------------------------------------------------- states

TEST(UsStatesTest, HasFiftyOneEntries) {
  int count = 0;
  AllStates(&count);
  EXPECT_EQ(count, 51);  // 50 states + DC
}

TEST(UsStatesTest, NormalizeAcceptsAbbreviationAndName) {
  EXPECT_EQ(NormalizeState("CA").value(), "CA");
  EXPECT_EQ(NormalizeState("ca").value(), "CA");
  EXPECT_EQ(NormalizeState("California").value(), "CA");
  EXPECT_EQ(NormalizeState(" texas ").value(), "TX");
}

TEST(UsStatesTest, NormalizeRejectsUnknown) {
  EXPECT_FALSE(NormalizeState("Narnia").has_value());
  EXPECT_FALSE(NormalizeState("").has_value());
  EXPECT_FALSE(NormalizeState("C").has_value());
  EXPECT_FALSE(NormalizeState("USA").has_value());
}

TEST(UsStatesTest, IsStateAbbreviation) {
  EXPECT_TRUE(IsStateAbbreviation("TX"));
  EXPECT_TRUE(IsStateAbbreviation("tx"));
  EXPECT_FALSE(IsStateAbbreviation("Texas"));
  EXPECT_FALSE(IsStateAbbreviation("XX"));
}

// -------------------------------------------------------------- gazetteer

class GazetteerTest : public ::testing::Test {
 protected:
  Gazetteer gaz_ = Gazetteer::FromEmbedded();
};

TEST_F(GazetteerTest, HasAtLeast300Cities) { EXPECT_GE(gaz_.size(), 300); }

TEST_F(GazetteerTest, FindExactCityState) {
  CityId austin = gaz_.Find("Austin", "TX");
  ASSERT_NE(austin, kInvalidCity);
  EXPECT_EQ(gaz_.city(austin).name, "Austin");
  EXPECT_EQ(gaz_.city(austin).state, "TX");
}

TEST_F(GazetteerTest, FindIsCaseInsensitiveAndAcceptsFullStateName) {
  EXPECT_NE(gaz_.Find("austin", "texas"), kInvalidCity);
  EXPECT_NE(gaz_.Find("LOS ANGELES", "ca"), kInvalidCity);
  EXPECT_EQ(gaz_.Find("Austin", "TX"), gaz_.Find("austin", "Texas"));
}

TEST_F(GazetteerTest, FindRejectsUnknown) {
  EXPECT_EQ(gaz_.Find("Atlantis", "CA"), kInvalidCity);
  EXPECT_EQ(gaz_.Find("Austin", "ZZ"), kInvalidCity);
}

TEST_F(GazetteerTest, PrincetonIsAmbiguous) {
  // The paper's example: "there are 19 towns named as Princeton".
  const std::vector<CityId>* hits = gaz_.FindByName("princeton");
  ASSERT_NE(hits, nullptr);
  EXPECT_GE(hits->size(), 2u);  // NJ and WV at least
  bool nj = false, wv = false;
  for (CityId c : *hits) {
    if (gaz_.city(c).state == "NJ") nj = true;
    if (gaz_.city(c).state == "WV") wv = true;
  }
  EXPECT_TRUE(nj);
  EXPECT_TRUE(wv);
}

TEST_F(GazetteerTest, FindByNameUnknownReturnsNull) {
  EXPECT_EQ(gaz_.FindByName("gotham"), nullptr);
}

TEST_F(GazetteerTest, DistancesMatchKnownGeography) {
  CityId la = gaz_.Find("Los Angeles", "CA");
  CityId sf = gaz_.Find("San Francisco", "CA");
  CityId ny = gaz_.Find("New York", "NY");
  CityId austin = gaz_.Find("Austin", "TX");
  CityId rr = gaz_.Find("Round Rock", "TX");
  EXPECT_NEAR(gaz_.DistanceMiles(la, sf), kLaToSf, 15.0);
  EXPECT_NEAR(gaz_.DistanceMiles(la, ny), kNyToLa, 30.0);
  EXPECT_NEAR(gaz_.DistanceMiles(austin, rr), kAustinToRr, 5.0);
}

TEST_F(GazetteerTest, FullNameFormat) {
  CityId austin = gaz_.Find("Austin", "TX");
  EXPECT_EQ(gaz_.FullName(austin), "Austin, TX");
}

TEST_F(GazetteerTest, PopulationWeightsMatchCities) {
  std::vector<double> w = gaz_.PopulationWeights();
  ASSERT_EQ(static_cast<int>(w.size()), gaz_.size());
  CityId ny = gaz_.Find("New York", "NY");
  // New York should carry the largest weight.
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(w[i], w[ny]);
  }
  EXPECT_GT(gaz_.TotalPopulation(), 50000000);
}

TEST_F(GazetteerTest, NearestCityOfCityCenterIsItself) {
  CityId chicago = gaz_.Find("Chicago", "IL");
  EXPECT_EQ(gaz_.NearestCity(gaz_.city(chicago).pos), chicago);
}

TEST_F(GazetteerTest, WithinMilesSortedAndInclusive) {
  CityId la = gaz_.Find("Los Angeles", "CA");
  std::vector<CityId> near = gaz_.WithinMiles(la, 30.0);
  ASSERT_FALSE(near.empty());
  EXPECT_EQ(near.front(), la);  // distance 0 sorts first
  double last = 0.0;
  for (CityId c : near) {
    double d = gaz_.DistanceMiles(la, c);
    EXPECT_LE(d, 30.0);
    EXPECT_GE(d, last);
    last = d;
  }
  // Santa Monica is ~15 miles from LA center.
  CityId sm = gaz_.Find("Santa Monica", "CA");
  EXPECT_NE(std::find(near.begin(), near.end(), sm), near.end());
}

TEST_F(GazetteerTest, FromRecordsValidates) {
  EXPECT_FALSE(Gazetteer::FromRecords({}).ok());
  City bad_state{"X", "ZZ", LatLon{0, 0}, 1};
  EXPECT_FALSE(Gazetteer::FromRecords({bad_state}).ok());
  City bad_lat{"X", "CA", LatLon{95.0, 0}, 1};
  EXPECT_FALSE(Gazetteer::FromRecords({bad_lat}).ok());
  City bad_pop{"X", "CA", LatLon{34, -118}, -5};
  EXPECT_FALSE(Gazetteer::FromRecords({bad_pop}).ok());
  City good{"X", "CA", LatLon{34, -118}, 5};
  EXPECT_TRUE(Gazetteer::FromRecords({good}).ok());
}

TEST_F(GazetteerTest, AllCitiesHaveValidStatesAndCoordinates) {
  for (CityId c = 0; c < gaz_.size(); ++c) {
    const City& city = gaz_.city(c);
    EXPECT_TRUE(NormalizeState(city.state).has_value()) << city.name;
    EXPECT_GT(city.pos.lat, 15.0) << city.name;   // south of Key West? no
    EXPECT_LT(city.pos.lat, 72.0) << city.name;   // north of Alaska? no
    EXPECT_LT(city.pos.lon, -60.0) << city.name;  // all in the US
    EXPECT_GT(city.pos.lon, -170.0) << city.name;
    EXPECT_GT(city.population, 0) << city.name;
  }
}

// -------------------------------------------------------------- grid index

class GridIndexTest : public ::testing::Test {
 protected:
  Gazetteer gaz_ = Gazetteer::FromEmbedded();
  CityGridIndex index_{&gaz_};
};

TEST_F(GridIndexTest, MatchesLinearScan) {
  CityId austin = gaz_.Find("Austin", "TX");
  for (double radius : {10.0, 50.0, 150.0, 400.0}) {
    std::vector<CityId> grid_hits =
        index_.WithinMiles(gaz_.city(austin).pos, radius);
    std::vector<CityId> scan_hits = gaz_.WithinMiles(austin, radius);
    std::sort(grid_hits.begin(), grid_hits.end());
    std::sort(scan_hits.begin(), scan_hits.end());
    EXPECT_EQ(grid_hits, scan_hits) << "radius=" << radius;
  }
}

TEST_F(GridIndexTest, NegativeRadiusEmpty) {
  EXPECT_TRUE(index_.WithinMiles(LatLon{30, -97}, -1.0).empty());
}

TEST_F(GridIndexTest, NearestMatchesGazetteer) {
  // A point in rural Kansas; nearest embedded city is well-defined.
  LatLon p{38.5, -98.8};
  EXPECT_EQ(index_.Nearest(p), gaz_.NearestCity(p));
}

TEST_F(GridIndexTest, NearestFromRemotePoint) {
  // Middle of the Pacific — still resolves (expanding ring terminates).
  LatLon p{30.0, -150.0};
  EXPECT_NE(index_.Nearest(p), kInvalidCity);
}

// --------------------------------------------------------- distance matrix

TEST(DistanceMatrixTest, SymmetricAndFloored) {
  Gazetteer gaz = Gazetteer::FromEmbedded();
  CityDistanceMatrix m(gaz, 1.0);
  ASSERT_EQ(m.size(), gaz.size());
  CityId la = gaz.Find("Los Angeles", "CA");
  CityId ny = gaz.Find("New York", "NY");
  EXPECT_DOUBLE_EQ(m.miles(la, ny), m.miles(ny, la));
  EXPECT_NEAR(m.miles(la, ny), kNyToLa, 30.0);
  // Diagonal is the floor, raw diagonal is 0.
  EXPECT_DOUBLE_EQ(m.miles(la, la), 1.0);
  EXPECT_DOUBLE_EQ(m.raw_miles(la, la), 0.0);
}

TEST(DistanceMatrixTest, FloorAppliesToVeryClosePairs) {
  Gazetteer gaz = Gazetteer::FromEmbedded();
  CityDistanceMatrix m(gaz, 25.0);
  CityId austin = gaz.Find("Austin", "TX");
  CityId rr = gaz.Find("Round Rock", "TX");  // ~17 miles
  EXPECT_DOUBLE_EQ(m.miles(austin, rr), 25.0);
  EXPECT_NEAR(m.raw_miles(austin, rr), kAustinToRr, 5.0);
}

TEST(DistanceMatrixTest, AgreesWithGazetteerWithinFloatPrecision) {
  Gazetteer gaz = Gazetteer::FromEmbedded();
  CityDistanceMatrix m(gaz, 1.0);
  for (CityId a = 0; a < gaz.size(); a += 37) {
    for (CityId b = 0; b < gaz.size(); b += 41) {
      double exact = std::max(gaz.DistanceMiles(a, b), 1.0);
      EXPECT_NEAR(m.miles(a, b), exact, exact * 1e-4 + 0.01);
    }
  }
}

}  // namespace
}  // namespace geo
}  // namespace mlp
