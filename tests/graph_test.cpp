// Unit tests for src/graph: the observation store, adjacency indexes, and
// dataset statistics.

#include <gtest/gtest.h>

#include "graph/graph_stats.h"
#include "graph/social_graph.h"

namespace mlp {
namespace graph {
namespace {

UserRecord MakeUser(const std::string& handle,
                    geo::CityId home = geo::kInvalidCity) {
  UserRecord r;
  r.handle = handle;
  r.registered_city = home;
  return r;
}

TEST(SocialGraphTest, AddUsersAssignsSequentialIds) {
  SocialGraph g(5);
  EXPECT_EQ(g.AddUser(MakeUser("a")), 0);
  EXPECT_EQ(g.AddUser(MakeUser("b")), 1);
  EXPECT_EQ(g.num_users(), 2);
  EXPECT_EQ(g.user(0).handle, "a");
}

TEST(SocialGraphTest, AddFollowingValidates) {
  SocialGraph g(0);
  g.AddUser(MakeUser("a"));
  g.AddUser(MakeUser("b"));
  EXPECT_TRUE(g.AddFollowing(0, 1).ok());
  EXPECT_TRUE(g.AddFollowing(1, 0).ok());
  EXPECT_FALSE(g.AddFollowing(0, 0).ok());   // self-follow
  EXPECT_FALSE(g.AddFollowing(0, 5).ok());   // unknown friend
  EXPECT_FALSE(g.AddFollowing(-1, 1).ok());  // unknown follower
  EXPECT_EQ(g.num_following(), 2);
}

TEST(SocialGraphTest, AddTweetingValidates) {
  SocialGraph g(3);
  g.AddUser(MakeUser("a"));
  EXPECT_TRUE(g.AddTweeting(0, 0).ok());
  EXPECT_TRUE(g.AddTweeting(0, 2).ok());
  EXPECT_FALSE(g.AddTweeting(0, 3).ok());  // venue out of range
  EXPECT_FALSE(g.AddTweeting(0, -1).ok());
  EXPECT_FALSE(g.AddTweeting(9, 0).ok());  // unknown user
  EXPECT_EQ(g.num_tweeting(), 2);
}

TEST(SocialGraphTest, RepeatedTweetingEdgesAllowed) {
  // "As u_i can tweet v_j many times, there could be many tweeting
  // relationships between u_i and v_j" (Sec. 3).
  SocialGraph g(1);
  g.AddUser(MakeUser("a"));
  EXPECT_TRUE(g.AddTweeting(0, 0).ok());
  EXPECT_TRUE(g.AddTweeting(0, 0).ok());
  EXPECT_EQ(g.num_tweeting(), 2);
}

TEST(SocialGraphTest, AdjacencyAfterFinalize) {
  SocialGraph g(2);
  g.AddUser(MakeUser("a"));
  g.AddUser(MakeUser("b"));
  g.AddUser(MakeUser("c"));
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());  // edge 0
  ASSERT_TRUE(g.AddFollowing(0, 2).ok());  // edge 1
  ASSERT_TRUE(g.AddFollowing(2, 1).ok());  // edge 2
  ASSERT_TRUE(g.AddTweeting(1, 0).ok());   // tweet 0
  ASSERT_TRUE(g.AddTweeting(1, 1).ok());   // tweet 1
  g.Finalize();

  EXPECT_EQ(g.OutEdges(0), (std::vector<EdgeId>{0, 1}));
  EXPECT_TRUE(g.OutEdges(1).empty());
  EXPECT_EQ(g.OutEdges(2), (std::vector<EdgeId>{2}));
  EXPECT_EQ(g.InEdges(1), (std::vector<EdgeId>{0, 2}));
  EXPECT_EQ(g.InEdges(0).size(), 0u);
  EXPECT_EQ(g.TweetEdges(1), (std::vector<EdgeId>{0, 1}));
  EXPECT_TRUE(g.TweetEdges(0).empty());
}

TEST(SocialGraphTest, LabeledCounting) {
  SocialGraph g(0);
  g.AddUser(MakeUser("a", 3));
  g.AddUser(MakeUser("b"));
  g.AddUser(MakeUser("c", 9));
  EXPECT_TRUE(g.is_labeled(0));
  EXPECT_FALSE(g.is_labeled(1));
  EXPECT_EQ(g.num_labeled(), 2);
}

TEST(SocialGraphTest, EdgeAccessors) {
  SocialGraph g(1);
  g.AddUser(MakeUser("a"));
  g.AddUser(MakeUser("b"));
  ASSERT_TRUE(g.AddFollowing(1, 0).ok());
  ASSERT_TRUE(g.AddTweeting(1, 0).ok());
  EXPECT_EQ(g.following(0).follower, 1);
  EXPECT_EQ(g.following(0).friend_user, 0);
  EXPECT_EQ(g.tweeting(0).user, 1);
  EXPECT_EQ(g.tweeting(0).venue, 0);
}

TEST(GraphStatsTest, AveragesMatchHandComputation) {
  SocialGraph g(2);
  for (int i = 0; i < 4; ++i) g.AddUser(MakeUser("u", i < 2 ? i : geo::kInvalidCity));
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  ASSERT_TRUE(g.AddFollowing(1, 2).ok());
  ASSERT_TRUE(g.AddTweeting(0, 0).ok());
  ASSERT_TRUE(g.AddTweeting(0, 1).ok());
  ASSERT_TRUE(g.AddTweeting(3, 1).ok());
  g.Finalize();

  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_users, 4);
  EXPECT_EQ(stats.num_labeled, 2);
  EXPECT_EQ(stats.num_following, 2);
  EXPECT_EQ(stats.num_tweeting, 3);
  EXPECT_DOUBLE_EQ(stats.avg_friends_per_user, 0.5);
  EXPECT_DOUBLE_EQ(stats.avg_venues_per_user, 0.75);
  EXPECT_DOUBLE_EQ(stats.labeled_fraction, 0.5);
}

TEST(GraphStatsTest, EmptyGraph) {
  SocialGraph g(0);
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_users, 0);
  EXPECT_DOUBLE_EQ(stats.avg_friends_per_user, 0.0);
}

TEST(NeighborCoverageTest, CountsUsersWhoseHomeAppearsInNeighborhood) {
  // u0 home=5, friend u1 home=5 → covered via following.
  // u2 home=7, no labeled neighbors, tweets venue referring to 7 → covered.
  // u3 home=9, nothing refers to 9 → uncovered.
  SocialGraph g(1);
  g.AddUser(MakeUser("u0", 5));
  g.AddUser(MakeUser("u1", 5));
  g.AddUser(MakeUser("u2", 7));
  g.AddUser(MakeUser("u3", 9));
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  ASSERT_TRUE(g.AddTweeting(2, 0).ok());
  ASSERT_TRUE(g.AddTweeting(3, 0).ok());
  g.Finalize();
  std::vector<std::vector<geo::CityId>> referents = {{7}};
  double coverage = NeighborLocationCoverage(g, referents);
  // u0 covered (friend at 5), u1 covered (follower at 5), u2 covered
  // (venue → 7), u3 not (venue → 7 ≠ 9). 3 of 4.
  EXPECT_DOUBLE_EQ(coverage, 0.75);
}

TEST(NeighborCoverageTest, NoLabeledUsersIsZero) {
  SocialGraph g(0);
  g.AddUser(MakeUser("a"));
  g.Finalize();
  EXPECT_DOUBLE_EQ(NeighborLocationCoverage(g, {}), 0.0);
}

}  // namespace
}  // namespace graph
}  // namespace mlp
