// Integration tests: cross-module flows that mirror the paper's headline
// claims on a moderately hard synthetic world — MLP beats both baselines on
// home prediction (Tab. 2 shape), beats them on multi-location recall
// (Tab. 3 shape), and explains relationships better than home assignment
// (Fig. 8 shape). Also exercises the full text pipeline and dataset
// persistence end to end.

#include <filesystem>

#include <gtest/gtest.h>

#include "baselines/home_explainer.h"
#include "core/model.h"
#include "eval/cross_validation.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "io/dataset_io.h"
#include "synth/tweet_text.h"
#include "synth/world_generator.h"
#include "text/venue_extractor.h"

namespace mlp {
namespace {

synth::WorldConfig HardConfig() {
  // Noisier than the defaults so the single-location baselines pay for
  // their assumption, as on real Twitter.
  synth::WorldConfig config;
  config.num_users = 2000;
  config.seed = 31337;
  config.following_noise_fraction = 0.25;
  config.tweeting_noise_fraction = 0.25;
  config.multi_location_fraction = 0.4;
  return config;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new synth::SyntheticWorld(
        std::move(synth::GenerateWorld(HardConfig()).ValueOrDie()));
    referents_ = new std::vector<std::vector<geo::CityId>>(
        world_->vocab->ReferentTable());
    registered_ = new std::vector<geo::CityId>(
        eval::RegisteredHomes(*world_->graph));
    folds_ = new eval::FoldAssignment(eval::MakeKFolds(*registered_, 5, 21));

    // Fit all five methods once; individual tests assert on the shapes.
    core::MlpConfig mlp_config;
    mlp_config.burn_in_iterations = 10;
    mlp_config.sampling_iterations = 12;
    outputs_ = new std::map<std::string, eval::MethodOutput>();
    core::ModelInput input = MakeInputStatic();
    for (const eval::NamedMethod& nm : eval::StandardLineup(mlp_config)) {
      Result<eval::MethodOutput> out = nm.method(input);
      ASSERT_TRUE(out.ok()) << nm.name;
      (*outputs_)[nm.name] = std::move(out).ValueOrDie();
    }
  }
  static void TearDownTestSuite() {
    delete world_;
    delete referents_;
    delete registered_;
    delete folds_;
    delete outputs_;
  }

  static core::ModelInput MakeInputStatic() {
    core::ModelInput input;
    input.gazetteer = world_->gazetteer.get();
    input.graph = world_->graph.get();
    input.distances = world_->distances.get();
    input.venue_referents = referents_;
    input.observed_home = folds_->MaskedHomes(*registered_, 0);
    return input;
  }

  static double TestAcc(const std::string& method, double miles = 100.0) {
    return eval::AccuracyWithin(outputs_->at(method).home, *registered_,
                                folds_->TestUsers(0), *world_->distances,
                                miles);
  }

  /// Multi-location users among ALL labeled users whose locations are
  /// mutually >= 150 miles apart ("clearly have multiple locations").
  static std::vector<graph::UserId> ClearMultiLocationUsers() {
    std::vector<graph::UserId> users;
    for (graph::UserId u = 0; u < world_->graph->num_users(); ++u) {
      const synth::TrueProfile& p = world_->truth.profiles[u];
      if (!p.IsMultiLocation()) continue;
      bool clear = true;
      for (size_t i = 0; i < p.locations.size() && clear; ++i) {
        for (size_t j = i + 1; j < p.locations.size(); ++j) {
          if (world_->distances->raw_miles(p.locations[i], p.locations[j]) <
              150.0) {
            clear = false;
            break;
          }
        }
      }
      if (clear) users.push_back(u);
    }
    return users;
  }

  static eval::MultiLocationScores MultiLocScores(const std::string& method,
                                                  int k) {
    std::vector<graph::UserId> users = ClearMultiLocationUsers();
    std::vector<std::vector<geo::CityId>> predicted(
        world_->graph->num_users());
    std::vector<std::vector<geo::CityId>> truth(world_->graph->num_users());
    for (graph::UserId u : users) {
      predicted[u] = outputs_->at(method).profiles[u].TopK(k);
      truth[u] = world_->truth.profiles[u].locations;
    }
    return eval::DistancePrecisionRecall(predicted, truth, users,
                                         *world_->distances, 100.0);
  }

  static synth::SyntheticWorld* world_;
  static std::vector<std::vector<geo::CityId>>* referents_;
  static std::vector<geo::CityId>* registered_;
  static eval::FoldAssignment* folds_;
  static std::map<std::string, eval::MethodOutput>* outputs_;
};

synth::SyntheticWorld* IntegrationTest::world_ = nullptr;
std::vector<std::vector<geo::CityId>>* IntegrationTest::referents_ = nullptr;
std::vector<geo::CityId>* IntegrationTest::registered_ = nullptr;
eval::FoldAssignment* IntegrationTest::folds_ = nullptr;
std::map<std::string, eval::MethodOutput>* IntegrationTest::outputs_ =
    nullptr;

// ----------------------------------------------------- Table 2 shape

TEST_F(IntegrationTest, MlpBeatsBothBaselinesOnHomePrediction) {
  double mlp = TestAcc("MLP");
  EXPECT_GT(mlp, TestAcc("BaseU"));
  EXPECT_GT(mlp, TestAcc("BaseC"));
}

TEST_F(IntegrationTest, MlpVariantsAgainstBaselineCounterparts) {
  // Tab. 2: MLP_C > BaseC holds outright. For MLP_U vs BaseU the paper's
  // ordering does not reproduce on the clean synthetic substrate (BaseU's
  // non-edge correction is unrealistically strong here — documented
  // deviation, DESIGN.md); we assert MLP_U stays within a bounded gap and
  // far above chance.
  EXPECT_GT(TestAcc("MLP_C"), TestAcc("BaseC"));
  EXPECT_GT(TestAcc("MLP_U"), TestAcc("BaseU") - 0.15);
  EXPECT_GT(TestAcc("MLP_U"), 0.5);
}

TEST_F(IntegrationTest, CombiningSourcesHelps) {
  // Tab. 2: MLP >= max(MLP_U, MLP_C) (integration is meaningful).
  double mlp = TestAcc("MLP");
  EXPECT_GE(mlp + 0.02, std::max(TestAcc("MLP_U"), TestAcc("MLP_C")));
}

TEST_F(IntegrationTest, ImprovementsHoldAcrossDistances) {
  // Fig. 4: the ordering holds at every distance level.
  for (double miles : {20.0, 60.0, 100.0, 140.0}) {
    EXPECT_GT(TestAcc("MLP", miles) + 0.03, TestAcc("BaseU", miles))
        << "at " << miles;
    EXPECT_GT(TestAcc("MLP", miles) + 0.03, TestAcc("BaseC", miles))
        << "at " << miles;
  }
}

// ----------------------------------------------------- Table 3 shape

TEST_F(IntegrationTest, MlpRecallBeatsBaselinesOnMultiLocationUsers) {
  eval::MultiLocationScores mlp = MultiLocScores("MLP", 2);
  eval::MultiLocationScores base_u = MultiLocScores("BaseU", 2);
  eval::MultiLocationScores base_c = MultiLocScores("BaseC", 2);
  EXPECT_GT(mlp.dr, base_u.dr);
  EXPECT_GT(mlp.dr, base_c.dr);
}

TEST_F(IntegrationTest, BaselineRecallBarelyGrowsWithK) {
  // Fig. 7: baselines' DR@3-DR@1 gain is small relative to MLP's, because
  // their extra predictions sit in one region.
  double mlp_gain = MultiLocScores("MLP", 3).dr - MultiLocScores("MLP", 1).dr;
  double base_gain =
      MultiLocScores("BaseU", 3).dr - MultiLocScores("BaseU", 1).dr;
  EXPECT_GT(mlp_gain, base_gain);
}

// ------------------------------------------------------- Fig. 8 shape

TEST_F(IntegrationTest, MlpExplainsRelationshipsBetterThanHomeBaseline) {
  core::MlpConfig config;
  config.burn_in_iterations = 10;
  config.sampling_iterations = 12;
  core::MlpModel model(config);
  core::ModelInput input = MakeInputStatic();
  Result<core::MlpResult> result = model.Fit(input);
  ASSERT_TRUE(result.ok());

  // Ground truth mirroring the Sec. 5.3 labeling protocol: relationships of
  // multi-location users "in which users' location assignments could be
  // clearly identified by their shared regions" — i.e. location-based
  // edges whose true assignments sit in one region (within 50 miles).
  std::vector<graph::EdgeId> eval_edges;
  std::vector<std::pair<geo::CityId, geo::CityId>> truth(
      world_->truth.following.size(),
      {geo::kInvalidCity, geo::kInvalidCity});
  for (size_t s = 0; s < world_->truth.following.size(); ++s) {
    const synth::FollowingTruth& t = world_->truth.following[s];
    if (t.noisy) continue;
    truth[s] = {t.x, t.y};
    if (world_->distances->raw_miles(t.x, t.y) > 50.0) continue;
    const graph::FollowingEdge& e =
        world_->graph->following(static_cast<graph::EdgeId>(s));
    if (world_->truth.profiles[e.follower].IsMultiLocation() ||
        world_->truth.profiles[e.friend_user].IsMultiLocation()) {
      eval_edges.push_back(static_cast<graph::EdgeId>(s));
    }
  }
  ASSERT_GT(eval_edges.size(), 200u);

  // Base: true home locations as assignments (the paper's strong variant).
  std::vector<geo::CityId> true_homes(world_->graph->num_users());
  for (graph::UserId u = 0; u < world_->graph->num_users(); ++u) {
    true_homes[u] = world_->truth.profiles[u].home();
  }
  auto base = baselines::ExplainByHome(*world_->graph, true_homes);

  double mlp_acc = eval::RelationshipAccuracy(
      result->following, truth, eval_edges, *world_->distances, 100.0);
  double base_acc = eval::RelationshipAccuracy(base, truth, eval_edges,
                                               *world_->distances, 100.0);
  EXPECT_GT(mlp_acc, base_acc);
}

// --------------------------------------------- text pipeline end to end

TEST_F(IntegrationTest, GraphRebuiltFromRenderedTweetsMatchesOriginal) {
  // Render tweets for 50 users, re-extract venues, and verify the rebuilt
  // tweeting relationships equal the originals — the full text pipeline
  // (templates → tokenizer → longest-match extraction) loses nothing.
  synth::TweetTextSynthesizer synth(99);
  text::VenueExtractor extractor(world_->vocab.get());
  int checked = 0;
  for (graph::UserId u = 0;
       u < world_->graph->num_users() && checked < 50; ++u) {
    const auto& edges = world_->graph->TweetEdges(u);
    if (edges.empty()) continue;
    ++checked;
    std::vector<std::string> tweets = synth.RenderTimeline(*world_, u);
    std::vector<graph::VenueId> rebuilt;
    for (const std::string& tweet : tweets) {
      for (graph::VenueId v : extractor.ExtractIds(tweet)) {
        rebuilt.push_back(v);
      }
    }
    std::vector<graph::VenueId> original;
    for (graph::EdgeId k : edges) {
      original.push_back(world_->graph->tweeting(k).venue);
    }
    EXPECT_EQ(rebuilt, original) << "user " << u;
  }
  EXPECT_EQ(checked, 50);
}

// -------------------------------------------------- persistence + refit

TEST_F(IntegrationTest, SavedDatasetYieldsSamePredictions) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "mlp_integration_ds")
          .string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(io::SaveDataset(dir, *world_->graph, &world_->truth).ok());
  auto loaded = io::LoadDataset(dir, world_->vocab->size());
  ASSERT_TRUE(loaded.ok());

  core::MlpConfig config;
  config.burn_in_iterations = 5;
  config.sampling_iterations = 5;

  core::ModelInput original = MakeInputStatic();
  core::ModelInput reloaded = original;
  reloaded.graph = &loaded->graph;

  Result<core::MlpResult> a = core::MlpModel(config).Fit(original);
  Result<core::MlpResult> b = core::MlpModel(config).Fit(reloaded);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->home, b->home);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mlp
