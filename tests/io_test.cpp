// Tests for src/io: CSV quoting/roundtrip, the table printer, and dataset
// save/load with ground truth.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "io/csv.h"
#include "io/dataset_io.h"
#include "io/table_printer.h"
#include "synth/world_generator.h"

namespace mlp {
namespace io {
namespace {

// --------------------------------------------------------------------- csv

TEST(CsvTest, ParsePlainFields) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvTest, ParseEmptyFields) {
  auto fields = ParseCsvLine(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvTest, ParseQuotedFieldWithComma) {
  auto fields = ParseCsvLine("\"Los Angeles, CA\",x");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "Los Angeles, CA");
  EXPECT_EQ(fields[1], "x");
}

TEST(CsvTest, ParseEscapedQuotes) {
  auto fields = ParseCsvLine("\"say \"\"hi\"\"\",y");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvTest, FormatQuotesWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvLine({"Los Angeles, CA"}), "\"Los Angeles, CA\"");
  EXPECT_EQ(FormatCsvLine({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(FormatCsvLine({" padded "}), "\" padded \"");
}

class CsvRoundtripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CsvRoundtripTest, FormatThenParseIsIdentity) {
  std::vector<std::string> row = {GetParam(), "second"};
  auto parsed = ParseCsvLine(FormatCsvLine(row));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], GetParam());
  EXPECT_EQ(parsed[1], "second");
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CsvRoundtripTest,
    ::testing::Values("plain", "with, comma", "with \"quote\"", "",
                      " leading space", "trailing space ", "tab\tinside"));

TEST(CsvTest, FileRoundtrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mlp_csv_test.csv").string();
  std::vector<std::vector<std::string>> rows = {
      {"h1", "h2"}, {"Austin, TX", "1"}, {"", "2"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileErrors) {
  auto result = ReadCsvFile("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(CsvTest, TsvSeparatorSupported) {
  auto fields = ParseCsvLine("a\tb", '\t');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(FormatCsvLine({"a", "b"}, '\t'), "a\tb");
}

// ------------------------------------------------------------ table printer

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Method", "ACC@100"});
  table.AddRow({"BaseU", "52.44%"});
  table.AddRow({"MLP", "62.3%"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("BaseU"), std::string::npos);
  // The ACC column is numeric, so it is right-aligned: "52.44%" and
  // "62.3%" must END at the same offset within their lines.
  size_t col_a = out.find("52.44%");
  size_t col_b = out.find("62.3%");
  ASSERT_NE(col_a, std::string::npos);
  ASSERT_NE(col_b, std::string::npos);
  size_t line_a = out.rfind('\n', col_a);
  size_t line_b = out.rfind('\n', col_b);
  EXPECT_EQ(col_a + 6 - line_a, col_b + 5 - line_b);
  // The label column is text and stays left-aligned: both labels start
  // right after their newline.
  size_t base_u = out.find("BaseU");
  size_t mlp = out.find("MLP");
  EXPECT_EQ(base_u - out.rfind('\n', base_u), mlp - out.rfind('\n', mlp));
}

TEST(TablePrinterTest, NumericColumnsRightAligned) {
  TablePrinter table({"n", "count"});
  table.AddRow({"a", "7"});
  table.AddRow({"b", "1234"});
  std::string out = table.ToString();
  // Right-aligned final column: "7" is padded out to the width of "1234",
  // so both data lines end at the same column (trailing pad is trimmed,
  // which under left-alignment would leave the lines ragged).
  EXPECT_NE(out.find("a      7\n"), std::string::npos) << out;
  EXPECT_NE(out.find("b   1234\n"), std::string::npos) << out;
}

TEST(TablePrinterTest, MixedColumnStaysLeftAligned) {
  TablePrinter table({"n", "value"});
  table.AddRow({"a", "12"});
  table.AddRow({"b", "n/a"});  // not numeric -> whole column left-aligned
  std::string out = table.ToString();
  EXPECT_NE(out.find("a  12\n"), std::string::npos) << out;
  EXPECT_NE(out.find("b  n/a\n"), std::string::npos) << out;
}

TEST(TablePrinterTest, ToCsvEscapesSeparatorsAndQuotes) {
  TablePrinter table({"stat", "value"});
  table.AddRow({"city", "Austin, TX"});
  table.AddRow({"quote", "say \"hi\""});
  table.AddRow({"plain", "42"});
  std::string csv = table.ToCsv();
  EXPECT_EQ(csv.rfind("stat,value\n", 0), 0u) << csv;
  EXPECT_NE(csv.find("city,\"Austin, TX\"\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("quote,\"say \"\"hi\"\"\"\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("plain,42\n"), std::string::npos) << csv;
  // Round-trips through the CSV parser.
  auto fields = ParseCsvLine("city,\"Austin, TX\"");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "Austin, TX");
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter table({"name", "v1", "v2"});
  table.AddRow("row", {0.5064, 0.47}, 3);
  std::string out = table.ToString();
  EXPECT_NE(out.find("0.506"), std::string::npos);
  EXPECT_NE(out.find("0.470"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NO_THROW(table.ToString());
}

// -------------------------------------------------------------- dataset io

TEST(DatasetIoTest, RoundtripsGraphAndTruth) {
  synth::WorldConfig config;
  config.num_users = 300;
  config.seed = 77;
  synth::SyntheticWorld world =
      std::move(synth::GenerateWorld(config).ValueOrDie());

  std::string dir =
      (std::filesystem::temp_directory_path() / "mlp_dataset_test").string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveDataset(dir, *world.graph, &world.truth).ok());

  auto loaded = LoadDataset(dir, world.vocab->size());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->has_truth);
  ASSERT_EQ(loaded->graph.num_users(), world.graph->num_users());
  ASSERT_EQ(loaded->graph.num_following(), world.graph->num_following());
  ASSERT_EQ(loaded->graph.num_tweeting(), world.graph->num_tweeting());

  for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
    EXPECT_EQ(loaded->graph.user(u).handle, world.graph->user(u).handle);
    EXPECT_EQ(loaded->graph.user(u).registered_city,
              world.graph->user(u).registered_city);
    EXPECT_EQ(loaded->truth.profiles[u].locations,
              world.truth.profiles[u].locations);
  }
  for (graph::EdgeId s = 0; s < world.graph->num_following(); ++s) {
    EXPECT_EQ(loaded->graph.following(s).follower,
              world.graph->following(s).follower);
    EXPECT_EQ(loaded->truth.following[s].noisy,
              world.truth.following[s].noisy);
    EXPECT_EQ(loaded->truth.following[s].x, world.truth.following[s].x);
  }
  for (graph::EdgeId k = 0; k < world.graph->num_tweeting(); ++k) {
    EXPECT_EQ(loaded->graph.tweeting(k).venue,
              world.graph->tweeting(k).venue);
    EXPECT_EQ(loaded->truth.tweeting[k].z, world.truth.tweeting[k].z);
  }
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, SaveWithoutTruthLoadsWithoutTruth) {
  graph::SocialGraph g(2);
  graph::UserRecord r;
  r.handle = "solo";
  r.profile_location = "Austin, TX";
  r.registered_city = 5;
  g.AddUser(r);
  g.AddUser({});
  ASSERT_TRUE(g.AddFollowing(0, 1).ok());
  ASSERT_TRUE(g.AddTweeting(0, 1).ok());
  g.Finalize();

  std::string dir =
      (std::filesystem::temp_directory_path() / "mlp_dataset_notruth")
          .string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveDataset(dir, g, nullptr).ok());
  auto loaded = LoadDataset(dir, 2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->has_truth);
  EXPECT_EQ(loaded->graph.num_users(), 2);
  EXPECT_EQ(loaded->graph.user(0).profile_location, "Austin, TX");
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, LoadFromMissingDirectoryErrors) {
  EXPECT_FALSE(LoadDataset("/definitely/not/a/dir", 1).ok());
}

}  // namespace
}  // namespace io
}  // namespace mlp
