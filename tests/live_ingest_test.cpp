// Live ingest+serve daemon (ISSUE 10 / ROADMAP "one-process ingest+serve
// daemon"), stream::LiveIngestor:
//   - a batch renamed into the spool is picked up, applied and atomically
//     swapped into the server (generation bump, new user served), and the
//     resulting model is byte-identical to offline `mlpctl ingest` of the
//     same delta,
//   - malformed and duplicate batches quarantine into failed/ with a
//     receipt.json and leave the served model untouched,
//   - a drain (Stop) finishes cleanly and checkpoints the absorbed model,
//   - an empty spool keeps the idle loop quiescent (no swaps, no applies),
//   - a bad spool directory fails Start() fast, on the caller's thread,
//   - swaps race request threads safely (the TSan shape: watcher thread
//     vs. Handle() vs. SwapReadModel).

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "io/model_snapshot.h"
#include "obs/fit_profile.h"
#include "obs/metrics.h"
#include "serve/model_server.h"
#include "serve/read_model.h"
#include "stream/delta_batch.h"
#include "stream/delta_ingest.h"
#include "stream/live_ingest.h"
#include "synth/world_generator.h"

namespace mlp {
namespace stream {
namespace {

namespace fs = std::filesystem;

synth::SyntheticWorld TestWorld(int num_users, uint64_t seed) {
  synth::WorldConfig config;
  config.num_users = num_users;
  config.seed = seed;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  EXPECT_TRUE(world.ok());
  return std::move(*world);
}

struct FitHarness {
  explicit FitHarness(const synth::SyntheticWorld& world) {
    input.gazetteer = world.gazetteer.get();
    input.graph = world.graph.get();
    input.distances = world.distances.get();
    referents = world.vocab->ReferentTable();
    input.venue_referents = &referents;
    input.observed_home.reserve(world.graph->num_users());
    for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
      input.observed_home.push_back(world.graph->user(u).registered_city);
    }
  }
  core::ModelInput input;
  std::vector<std::vector<geo::CityId>> referents;
};

core::MlpResult FitBase(const core::ModelInput& input,
                        core::FitCheckpoint* checkpoint) {
  core::MlpConfig config;
  config.burn_in_iterations = 3;
  config.sampling_iterations = 3;
  config.num_threads = 1;
  core::FitOptions opts;
  opts.checkpoint_out = checkpoint;
  Result<core::MlpResult> result = core::MlpModel(config).Fit(input, opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

void WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A fresh, empty spool under the test temp dir.
fs::path FreshSpool(const std::string& name) {
  const fs::path spool = fs::path(::testing::TempDir()) / name;
  fs::remove_all(spool);
  fs::create_directories(spool);
  return spool;
}

/// Stages the standard two-user delta (one labeled, one unlabeled, a few
/// edges onto low-id users) as CSV files under `dir`. `first` is the id
/// the batch's first user will get — the serving world's user count at
/// apply time.
void StageDeltaCsvs(const fs::path& dir, int first) {
  fs::create_directories(dir);
  WriteFile(dir / "users.csv",
            "handle,profile_location,registered_city\n"
            "live_labeled_" + std::to_string(first) + ",\"Austin, TX\",3\n"
            "live_unlabeled_" + std::to_string(first) + ",,-1\n");
  WriteFile(dir / "following.csv",
            "follower,friend\n" + std::to_string(first) + ",0\n" +
                std::to_string(first + 1) + "," + std::to_string(first) +
                "\n1," + std::to_string(first + 1) + "\n");
  WriteFile(dir / "tweeting.csv",
            "user,venue\n" + std::to_string(first) + ",2\n" +
                std::to_string(first + 1) + ",5\n");
}

/// The rename-in protocol a writer follows: stage under tmp.*, rename to
/// batch-NAME (the commit point the watcher keys on).
void SpoolBatch(const fs::path& spool, const std::string& name, int first) {
  const fs::path staging = spool / ("tmp." + name);
  StageDeltaCsvs(staging, first);
  fs::rename(staging, spool / name);
}

serve::HttpRequest UserRequest(int id) {
  serve::HttpRequest request;
  request.method = "GET";
  request.target = "/v1/user/" + std::to_string(id);
  return request;
}

/// Builds the base ReadModel + server for a fitted harness. Routing runs
/// through Handle() — no sockets, so the tests are sanitizer-friendly.
serve::ModelServer MakeServer(const FitHarness& harness,
                              const synth::SyntheticWorld& world,
                              const core::FitCheckpoint& checkpoint,
                              const core::MlpResult& result) {
  io::ModelSnapshot snap =
      io::MakeModelSnapshot(harness.input, checkpoint, result);
  Result<serve::ReadModel> model = serve::ReadModel::Build(
      snap, *world.graph, harness.input.gazetteer);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return serve::ModelServer(std::move(*model), serve::ServeOptions());
}

// -------------------------------------------------------------- apply path

TEST(LiveIngestTest, BatchAppliedSwappedAndByteIdenticalToOffline) {
  synth::SyntheticWorld world = TestWorld(150, 5);
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::MlpResult result = FitBase(harness.input, &checkpoint);
  serve::ModelServer server = MakeServer(harness, world, checkpoint, result);
  const int base_users = world.graph->num_users();

  const fs::path spool = FreshSpool("live_apply_spool");
  // The offline reference: the SAME CSV bytes applied through the same
  // entry points `mlpctl ingest` uses (LoadDeltaBatch + ApplyDeltaBatch
  // with default IngestOptions — LiveIngestOptions defaults must match).
  const fs::path reference = fs::path(::testing::TempDir()) / "live_ref_delta";
  fs::remove_all(reference);
  StageDeltaCsvs(reference, base_users);
  Result<DeltaBatch> delta = LoadDeltaBatch(reference.string());
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  Result<IngestOutput> offline = ApplyDeltaBatch(
      harness.input, checkpoint, result, *delta, IngestOptions());
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();
  core::ModelInput merged = harness.input;
  merged.graph = offline->merged_graph.get();
  merged.observed_home = offline->merged_observed_home;
  const std::string offline_snap = ::testing::TempDir() + "/live_offline.snap";
  ASSERT_TRUE(io::SaveModelSnapshot(
                  offline_snap, io::MakeModelSnapshot(
                                    merged, offline->checkpoint,
                                    offline->result))
                  .ok());

  LiveIngestOptions options;
  options.spool_dir = spool.string();
  options.poll_ms = 10;
  LiveIngestor ingestor(&server, harness.input, checkpoint, result, options);
  ASSERT_TRUE(ingestor.Start().ok());

  EXPECT_EQ(server.Handle(UserRequest(base_users)).status, 404);
  SpoolBatch(spool, "batch-0001", base_users);
  ASSERT_TRUE(ingestor.WaitForApplied(1, 30000));

  // Swap landed: generation bumped, the delta user serves, the batch
  // moved to done/ with its files intact.
  EXPECT_EQ(server.model_generation(), 2u);
  EXPECT_EQ(server.Handle(UserRequest(base_users)).status, 200);
  EXPECT_EQ(server.Handle(UserRequest(0)).status, 200);
  EXPECT_FALSE(fs::exists(spool / "batch-0001"));
  EXPECT_TRUE(fs::exists(spool / "done" / "batch-0001" / "users.csv"));
  EXPECT_EQ(ingestor.batches_failed(), 0u);
  EXPECT_GE(ingestor.max_swap_staleness_ms(), 0);

  // The acceptance criterion: the live-spooled model is byte-identical to
  // the offline ingest of the same delta.
  const std::string live_snap = ::testing::TempDir() + "/live_live.snap";
  ASSERT_TRUE(ingestor.SaveSnapshot(live_snap).ok());
  EXPECT_EQ(FileBytes(live_snap), FileBytes(offline_snap));
}

// -------------------------------------------------------------- quarantine

TEST(LiveIngestTest, MalformedAndDuplicateBatchesQuarantined) {
  synth::SyntheticWorld world = TestWorld(120, 9);
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::MlpResult result = FitBase(harness.input, &checkpoint);
  serve::ModelServer server = MakeServer(harness, world, checkpoint, result);

  const fs::path spool = FreshSpool("live_bad_spool");
  LiveIngestOptions options;
  options.spool_dir = spool.string();
  options.poll_ms = 10;
  LiveIngestor ingestor(&server, harness.input, checkpoint, result, options);
  ASSERT_TRUE(ingestor.Start().ok());
  const std::string body_before = server.Handle(UserRequest(0)).body;

  // Load-stage failure: a users.csv row with a non-numeric city.
  fs::create_directories(spool / "tmp.m");
  WriteFile(spool / "tmp.m" / "users.csv",
            "handle,profile_location,registered_city\nbad,,notanumber\n");
  fs::rename(spool / "tmp.m", spool / "batch-malformed");
  // Apply-stage failure: a duplicate of an existing handle.
  fs::create_directories(spool / "tmp.d");
  WriteFile(spool / "tmp.d" / "users.csv",
            "handle,profile_location,registered_city\n" +
                world.graph->user(7).handle + ",,3\n");
  fs::rename(spool / "tmp.d", spool / "batch-zduplicate");

  ASSERT_TRUE(ingestor.WaitForFailed(2, 30000));

  // Served model untouched: same generation, same bytes, nothing applied.
  EXPECT_EQ(server.model_generation(), 1u);
  EXPECT_EQ(server.Handle(UserRequest(0)).body, body_before);
  EXPECT_EQ(ingestor.batches_applied(), 0u);

  // Both quarantined with machine-readable receipts naming the stage.
  for (const auto& [name, stage] :
       {std::pair<std::string, std::string>{"batch-malformed", "load"},
        std::pair<std::string, std::string>{"batch-zduplicate", "apply"}}) {
    EXPECT_FALSE(fs::exists(spool / name));
    const fs::path receipt = spool / "failed" / name / "receipt.json";
    ASSERT_TRUE(fs::exists(receipt)) << receipt;
    const std::string json = FileBytes(receipt.string());
    EXPECT_NE(json.find("\"stage\":\"" + stage + "\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"error\":"), std::string::npos) << json;
  }
}

// ------------------------------------------------------------------- drain

TEST(LiveIngestTest, DrainCheckpointsAbsorbedModel) {
  synth::SyntheticWorld world = TestWorld(120, 3);
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::MlpResult result = FitBase(harness.input, &checkpoint);
  serve::ModelServer server = MakeServer(harness, world, checkpoint, result);
  const int base_users = world.graph->num_users();

  const fs::path spool = FreshSpool("live_drain_spool");
  const std::string ckpt = ::testing::TempDir() + "/live_drain.snap";
  fs::remove(ckpt);
  LiveIngestOptions options;
  options.spool_dir = spool.string();
  options.poll_ms = 10;
  options.checkpoint_path = ckpt;
  {
    LiveIngestor ingestor(&server, harness.input, checkpoint, result,
                          options);
    ASSERT_TRUE(ingestor.Start().ok());
    SpoolBatch(spool, "batch-0001", base_users);
    ASSERT_TRUE(ingestor.WaitForApplied(1, 30000));
    ingestor.Stop();

    // The drain checkpoint is the absorbed model, loadable as an ordinary
    // snapshot and identical to what SaveSnapshot reports right now.
    Result<io::ModelSnapshot> reloaded = io::LoadModelSnapshot(ckpt);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    EXPECT_EQ(static_cast<int>(reloaded->result.home.size()),
              base_users + 2);
    const std::string again = ::testing::TempDir() + "/live_drain2.snap";
    ASSERT_TRUE(ingestor.SaveSnapshot(again).ok());
    EXPECT_EQ(FileBytes(ckpt), FileBytes(again));
    // Idempotent: a second Stop (and the destructor's) is a no-op.
    ingestor.Stop();
  }

  // A second start/drain cycle over the same (now empty) spool — the
  // leak-check shape the ASan leg runs: construct, start, stop, destroy.
  {
    LiveIngestor second(&server, harness.input, checkpoint, result, options);
    ASSERT_TRUE(second.Start().ok());
    second.Stop();
  }
}

// ---------------------------------------------------------------- idleness

TEST(LiveIngestTest, EmptySpoolStaysQuiescent) {
  synth::SyntheticWorld world = TestWorld(100, 7);
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::MlpResult result = FitBase(harness.input, &checkpoint);
  serve::ModelServer server = MakeServer(harness, world, checkpoint, result);

  // The registry is process-global and cumulative across tests: assert on
  // deltas, not absolutes.
  obs::Registry& registry = obs::Registry::Global();
  const uint64_t applied_before =
      registry.GetCounter(obs::kIngestLiveBatchesTotal)->Value();
  const uint64_t apply_count_before =
      registry.GetHistogram(obs::kIngestApplyNs, obs::IngestApplyNsBounds())
          ->GetSnapshot()
          .count;

  const fs::path spool = FreshSpool("live_idle_spool");
  LiveIngestOptions options;
  options.spool_dir = spool.string();
  options.poll_ms = 5;
  LiveIngestor ingestor(&server, harness.input, checkpoint, result, options);
  ASSERT_TRUE(ingestor.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ingestor.Stop();

  EXPECT_EQ(server.model_generation(), 1u);
  EXPECT_EQ(ingestor.batches_applied(), 0u);
  EXPECT_EQ(ingestor.batches_failed(), 0u);
  EXPECT_EQ(registry.GetGauge(obs::kIngestSpoolDepth)->Value(), 0);
  EXPECT_EQ(registry.GetCounter(obs::kIngestLiveBatchesTotal)->Value(),
            applied_before);
  EXPECT_EQ(
      registry.GetHistogram(obs::kIngestApplyNs, obs::IngestApplyNsBounds())
          ->GetSnapshot()
          .count,
      apply_count_before);
}

// ----------------------------------------------------------- startup guard

TEST(LiveIngestTest, StartFailsFastOnBadSpool) {
  synth::SyntheticWorld world = TestWorld(100, 13);
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::MlpResult result = FitBase(harness.input, &checkpoint);
  serve::ModelServer server = MakeServer(harness, world, checkpoint, result);

  auto make = [&](const LiveIngestOptions& options) {
    return std::make_unique<LiveIngestor>(&server, harness.input, checkpoint,
                                          result, options);
  };

  LiveIngestOptions options;
  options.spool_dir = ::testing::TempDir() + "/live_no_such_spool";
  fs::remove_all(options.spool_dir);
  EXPECT_FALSE(make(options)->Start().ok());

  // A plain file is not a spool either.
  const std::string file_path = ::testing::TempDir() + "/live_spool_file";
  WriteFile(file_path, "not a directory\n");
  options.spool_dir = file_path;
  EXPECT_FALSE(make(options)->Start().ok());

  // Incoherent knobs are rejected before any filesystem work.
  options.spool_dir = FreshSpool("live_guard_spool").string();
  options.poll_ms = 0;
  EXPECT_FALSE(make(options)->Start().ok());
  options.poll_ms = 10;
  options.checkpoint_every = 2;  // ...without a checkpoint path
  EXPECT_FALSE(make(options)->Start().ok());
  options.checkpoint_every = 0;

  // Unwritable spool: the watcher could never quarantine or complete a
  // batch, so Start refuses. Root bypasses permission bits — skip there.
  if (::geteuid() != 0) {
    const fs::path readonly = FreshSpool("live_readonly_spool");
    ::chmod(readonly.c_str(), 0500);
    options.spool_dir = readonly.string();
    EXPECT_FALSE(make(options)->Start().ok());
    ::chmod(readonly.c_str(), 0700);
  }
}

// ------------------------------------------------------------- concurrency

TEST(LiveIngestTest, SwapsRaceRequestThreadsSafely) {
  synth::SyntheticWorld world = TestWorld(150, 21);
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::MlpResult result = FitBase(harness.input, &checkpoint);
  serve::ModelServer server = MakeServer(harness, world, checkpoint, result);
  const int base_users = world.graph->num_users();

  const fs::path spool = FreshSpool("live_race_spool");
  LiveIngestOptions options;
  options.spool_dir = spool.string();
  options.poll_ms = 5;
  LiveIngestor ingestor(&server, harness.input, checkpoint, result, options);
  ASSERT_TRUE(ingestor.Start().ok());

  // Request threads hammer Handle() across both swaps — the exact shape
  // the TSan matrix leg checks (watcher apply/swap vs. concurrent reads).
  std::atomic<bool> done{false};
  std::atomic<uint64_t> responses{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const serve::HttpResponse response = server.Handle(UserRequest(0));
        if (response.status == 200) {
          responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  SpoolBatch(spool, "batch-0001", base_users);
  ASSERT_TRUE(ingestor.WaitForApplied(1, 30000));
  SpoolBatch(spool, "batch-0002", base_users + 2);
  ASSERT_TRUE(ingestor.WaitForApplied(2, 30000));
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(server.model_generation(), 3u);
  EXPECT_GT(responses.load(), 0u);
  EXPECT_EQ(server.Handle(UserRequest(base_users + 3)).status, 200);
}

}  // namespace
}  // namespace stream
}  // namespace mlp
