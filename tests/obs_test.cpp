// Tests for src/obs: metrics registry (sharded counters, histograms,
// Prometheus rendering), trace spans, the fit-profile breakdown helper,
// and the logging satellites (ParseLogLevel, thread ordinals). The
// concurrent cases double as the TSan targets (CI runs obs_test under
// -fsanitize=thread): N writer threads hammer a counter/histogram while a
// reader scrapes mid-update.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "obs/fit_profile.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/ring_log.h"
#include "obs/trace.h"

namespace mlp {
namespace obs {
namespace {

// ------------------------------------------------------------- counters

TEST(CounterTest, SingleThreadedSum) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(CounterTest, ScrapeDuringUpdateIsCleanAndMonotonic) {
  // The reader races the writers on purpose: relaxed sharded cells promise
  // no torn reads and a monotonically growing total, which is exactly what
  // a /metricsz scrape relies on. TSan validates the absence of data races.
  Counter counter;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) counter.Add();
    });
  }
  uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    uint64_t now = counter.Value();
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  EXPECT_GE(counter.Value(), last);
}

// --------------------------------------------------------------- gauges

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Set(-5);
  EXPECT_EQ(gauge.Value(), -5);
}

// ----------------------------------------------------------- histograms

TEST(HistogramTest, BucketBoundariesAreUpperInclusive) {
  // Prometheus `le` semantics: a value equal to a bound lands IN that
  // bound's bucket; one past it spills to the next.
  Histogram histogram({10, 100, 1000});
  histogram.Record(0);     // -> le=10
  histogram.Record(10);    // -> le=10 (inclusive)
  histogram.Record(11);    // -> le=100
  histogram.Record(100);   // -> le=100
  histogram.Record(1000);  // -> le=1000
  histogram.Record(1001);  // -> +Inf
  Histogram::Snapshot snap = histogram.GetSnapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 2u);
  EXPECT_EQ(snap.bucket_counts[1], 2u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.bucket_counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 0 + 10 + 11 + 100 + 1000 + 1001);
}

TEST(HistogramTest, ConcurrentRecordsSumExactly) {
  Histogram histogram({5, 50});
  constexpr int kThreads = 6;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.Record(i % 100);
    });
  }
  for (std::thread& thread : threads) thread.join();
  Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  // i%100: 6 of each residue per thread pass -> 500 cycles * 6 values
  // 0..5 inclusive => bucket0 = 6 residues per 100.
  EXPECT_EQ(snap.bucket_counts[0],
            static_cast<uint64_t>(kThreads) * kPerThread * 6 / 100);
  EXPECT_EQ(snap.bucket_counts[1],
            static_cast<uint64_t>(kThreads) * kPerThread * 45 / 100);
}

TEST(HistogramTest, ScrapeDuringRecordTSan) {
  Histogram histogram({10, 100});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) histogram.Record(i++ % 200);
    });
  }
  uint64_t last_count = 0;
  for (int i = 0; i < 500; ++i) {
    // Mid-update scrapes: relaxed cells make no cross-location promises,
    // so the only invariant worth asserting while writers run is that the
    // total count never moves backwards. The real check is TSan cleanliness.
    Histogram::Snapshot snap = histogram.GetSnapshot();
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  Histogram::Snapshot final_snap = histogram.GetSnapshot();
  uint64_t total = 0;
  for (uint64_t c : final_snap.bucket_counts) total += c;
  EXPECT_EQ(final_snap.count, total);
}

TEST(HistogramTest, EmptySnapshotScrapesCleanly) {
  Histogram histogram({10, 100});
  Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0);
  ASSERT_EQ(snap.bucket_counts.size(), 3u);  // two bounds + the +Inf slot
  for (uint64_t c : snap.bucket_counts) EXPECT_EQ(c, 0u);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.5), 0.0);
}

TEST(HistogramQuantileTest, InterpolatesWithinBucket) {
  Histogram histogram({100, 200});
  for (int i = 0; i < 100; ++i) histogram.Record(150);  // all in (100, 200]
  Histogram::Snapshot snap = histogram.GetSnapshot();
  // Linear interpolation inside the (100, 200] bucket: p50 is the middle.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.5), 150.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 1.0), 200.0);
}

TEST(HistogramQuantileTest, ValueEqualToBoundStaysInLowerBucket) {
  // Upper-inclusive semantics carry into the quantile: a population of
  // exactly-at-bound values is attributed to that bound's bucket, so every
  // quantile lands at or below the bound — never in the next bucket.
  Histogram histogram({10, 100});
  for (int i = 0; i < 8; ++i) histogram.Record(10);
  Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_EQ(snap.bucket_counts[0], 8u);
  EXPECT_LE(HistogramQuantile(snap, 0.99), 10.0);
}

TEST(HistogramQuantileTest, OverflowBucketClampsToLastFiniteBound) {
  Histogram histogram({10, 100});
  histogram.Record(5000);  // +Inf bucket
  histogram.Record(7000);
  Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_EQ(snap.bucket_counts.back(), 2u);
  // A quantile falling in +Inf cannot interpolate to infinity; it reports
  // the last finite bound as the best lower estimate.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.99), 100.0);
}

TEST(HistogramQuantileTest, ClampsQAndSkipsEmptyLeadingBuckets) {
  Histogram histogram({10, 100, 1000});
  histogram.Record(50);
  Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, -1.0),
                   HistogramQuantile(snap, 0.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 2.0),
                   HistogramQuantile(snap, 1.0));
  // The single sample lives in (10, 100]; every quantile stays there.
  EXPECT_GT(HistogramQuantile(snap, 0.5), 10.0);
  EXPECT_LE(HistogramQuantile(snap, 0.5), 100.0);
}

// ------------------------------------------------------------- registry

TEST(RegistryTest, SameNameReturnsSameHandle) {
  Registry& registry = Registry::Global();
  Counter* a = registry.GetCounter("obs_test_same_name");
  Counter* b = registry.GetCounter("obs_test_same_name");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("obs_test_same_gauge");
  Gauge* g2 = registry.GetGauge("obs_test_same_gauge");
  EXPECT_EQ(g1, g2);
}

TEST(RegistryTest, CounterValuesSnapshotsRegisteredCounters) {
  Registry& registry = Registry::Global();
  registry.GetCounter("obs_test_snapshot_counter")->Add(7);
  std::map<std::string, uint64_t> values = registry.CounterValues();
  ASSERT_TRUE(values.count("obs_test_snapshot_counter"));
  EXPECT_GE(values["obs_test_snapshot_counter"], 7u);
}

TEST(RegistryTest, RenderPrometheusExposition) {
  Registry& registry = Registry::Global();
  registry.GetCounter("obs_test_prom_counter")->Add(3);
  registry.GetGauge("obs_test_prom_gauge")->Set(-2);
  registry.GetHistogram("obs_test_prom_hist", {1, 10})->Record(5);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE obs_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_gauge -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"1\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_sum 5"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_count 1"), std::string::npos);
}

TEST(RegistryTest, ConcurrentGetOrCreateIsSafe) {
  Registry& registry = Registry::Global();
  std::vector<std::thread> threads;
  std::vector<Counter*> handles(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, &handles, t] {
      handles[t] = registry.GetCounter("obs_test_concurrent_get");
      handles[t]->Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(handles[0]->Value(), 8u);
}

// ------------------------------------------------------- spans and trace

TEST(TraceTest, ScopedSpanAccumulatesIntoCounter) {
  Counter counter;
  { ScopedSpan span(&counter, "obs_test_span"); }
  EXPECT_GT(counter.Value(), 0u);
}

TEST(TraceTest, DisabledSkipsCountingEntirely) {
  Counter counter;
  SetEnabled(false);
  { ScopedSpan span(&counter, "obs_test_disabled_span"); }
  EXPECT_EQ(EndSpan(&counter, "obs_test_disabled_end", NowNs()), 0);
  SetEnabled(true);
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(TraceTest, RecorderCollectsSpansAndWritesChromeTrace) {
  TraceRecorder recorder;
  SetTraceRecorder(&recorder);
  {
    ScopedSpan span(nullptr, "traced_phase");
  }
  EndSpan(nullptr, "manual_phase", NowNs());
  SetTraceRecorder(nullptr);
  EXPECT_EQ(recorder.event_count(), 2u);

  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 14, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("\"name\":\"traced_phase\""), std::string::npos);
  EXPECT_NE(contents.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, NoRecorderInstalledStillCounts) {
  ASSERT_EQ(GetTraceRecorder(), nullptr);
  Counter counter;
  { ScopedSpan span(&counter, "uninstalled"); }
  EXPECT_GT(counter.Value(), 0u);
}

// -------------------------------------------------------- request traces

TEST(RequestTraceTest, IdsAreProcessMonotonic) {
  RequestTrace a;
  RequestTrace b;
  RequestTrace c;
  EXPECT_LT(a.id(), b.id());
  EXPECT_LT(b.id(), c.id());
}

TEST(RequestTraceTest, StageAccumulationAndDefaults) {
  RequestTrace trace;
  EXPECT_STREQ(trace.endpoint(), "other");
  EXPECT_STREQ(trace.outcome(), "none");
  trace.AddStageNs(RequestStage::kRender, 100);
  trace.AddStageNs(RequestStage::kRender, 50);
  trace.AddStageNs(RequestStage::kParse, 0);    // ignored
  trace.AddStageNs(RequestStage::kParse, -10);  // ignored
  EXPECT_EQ(trace.stage_ns(RequestStage::kRender), 150);
  EXPECT_EQ(trace.stage_ns(RequestStage::kParse), 0);
}

TEST(RequestTraceTest, StageTimerRecordsElapsedAndToleratesNull) {
  RequestTrace trace;
  {
    RequestTrace::StageTimer timer(&trace, RequestStage::kCacheLookup);
  }
  EXPECT_GT(trace.stage_ns(RequestStage::kCacheLookup), 0);
  {
    RequestTrace::StageTimer timer(nullptr, RequestStage::kRender);
  }  // must not crash
}

TEST(RequestTraceTest, FinishIsIdempotent) {
  RequestTrace trace;
  const int64_t first = trace.Finish();
  EXPECT_GE(first, 0);
  EXPECT_EQ(trace.Finish(), first);
  EXPECT_EQ(trace.total_ns(), first);
}

TEST(RequestTraceTest, DisabledStillAssignsIdsButSkipsTimings) {
  SetEnabled(false);
  RequestTrace a;
  RequestTrace b;
  EXPECT_LT(a.id(), b.id());  // access-log correlation survives the switch
  EXPECT_EQ(a.start_ns(), 0);
  {
    RequestTrace::StageTimer timer(&a, RequestStage::kRender);
  }
  EXPECT_EQ(a.stage_ns(RequestStage::kRender), 0);
  EXPECT_EQ(a.Finish(), 0);
  SetEnabled(true);
}

TEST(RequestTraceTest, RebaseStartMovesTheClockBack) {
  RequestTrace trace;
  const int64_t earlier = trace.start_ns() - 1000;
  trace.RebaseStart(earlier);
  EXPECT_EQ(trace.start_ns(), earlier);
  trace.RebaseStart(0);  // ignored: no first byte observed
  EXPECT_EQ(trace.start_ns(), earlier);
}

TEST(RequestTraceTest, StageNamesAndCounterNamesAlign) {
  EXPECT_STREQ(RequestStageName(RequestStage::kParse), "parse");
  EXPECT_STREQ(RequestStageName(RequestStage::kBatchQueueWait),
               "batch_queue_wait");
  EXPECT_STREQ(RequestStageCounterName(RequestStage::kParse),
               kServeStageParseNs);
  EXPECT_STREQ(RequestStageCounterName(RequestStage::kWrite),
               kServeStageWriteNs);
}

// -------------------------------------------------------- slow-query ring

RequestTraceRecord TestRecord(uint64_t id) {
  RequestTraceRecord record;
  record.id = id;
  record.method = "GET";
  record.target = "/v1/user/" + std::to_string(id);
  return record;
}

TEST(RingLogTest, RetainsInsertionOrderBelowCapacity) {
  RingLog ring(4);
  ring.Push(TestRecord(1));
  ring.Push(TestRecord(2));
  std::vector<RequestTraceRecord> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].id, 1u);
  EXPECT_EQ(snap[1].id, 2u);
  EXPECT_EQ(ring.total_pushed(), 2u);
}

TEST(RingLogTest, WrapsKeepingNewestOldestFirst) {
  RingLog ring(3);
  for (uint64_t id = 1; id <= 5; ++id) ring.Push(TestRecord(id));
  std::vector<RequestTraceRecord> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].id, 3u);  // 1 and 2 aged out
  EXPECT_EQ(snap[1].id, 4u);
  EXPECT_EQ(snap[2].id, 5u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.total_pushed(), 5u);
}

TEST(RingLogTest, ZeroCapacityClampsToOne) {
  RingLog ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Push(TestRecord(7));
  ring.Push(TestRecord(8));
  std::vector<RequestTraceRecord> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].id, 8u);
}

TEST(RingLogTest, MakeRecordFlattensTheTrace) {
  RequestTrace trace;
  trace.set_endpoint("user");
  trace.set_outcome("miss");
  trace.set_status(200);
  trace.set_generation(3);
  trace.AddStageNs(RequestStage::kRender, 1234);
  trace.Finish();
  RequestTraceRecord record = MakeRecord(trace, "GET", "/v1/user/9");
  EXPECT_EQ(record.id, trace.id());
  EXPECT_EQ(record.total_ns, trace.total_ns());
  EXPECT_EQ(record.stage_ns[static_cast<int>(RequestStage::kRender)], 1234);
  EXPECT_STREQ(record.endpoint, "user");
  EXPECT_STREQ(record.outcome, "miss");
  EXPECT_EQ(record.status, 200);
  EXPECT_EQ(record.generation, 3u);
  EXPECT_EQ(record.method, "GET");
  EXPECT_EQ(record.target, "/v1/user/9");
}

// ----------------------------------------------------------- fit profile

TEST(FitProfileTest, BreakdownNormalizesWorkerPhasesByThreads) {
  // Every in-sweep engine phase runs inside a parallel section now
  // (region-sliced refresh/merge, per-sub-shard kernel/fold, the rebuild
  // of the alias proposal tables), so each one accumulates across the 4
  // threads and normalizes down by 4 to a wall-clock-equivalent.
  std::map<std::string, uint64_t> before;
  std::map<std::string, uint64_t> after;
  after[kFitSweepsTotal] = 10;
  after[kFitSweepNs] = 100000000;          // 100 ms of sweep wall
  after[kFitReplicaRefreshNs] = 24000000;  // 24 ms across 4 threads = 6 ms
  after[kFitAliasRebuildNs] = 16000000;    // 16 ms across 4 threads = 4 ms
  after[kFitShardKernelNs] = 240000000;    // 240 ms across 4 threads = 60 ms
  after[kFitDeltaFoldNs] = 16000000;       // 16 ms across 4 threads = 4 ms
  after[kFitBarrierWaitNs] = 80000000;     // 80 ms across 4 threads = 20 ms
  after[kFitDeltaMergeNs] = 24000000;      // 24 ms across 4 threads = 6 ms
  FitProfile profile = ComputeFitProfile(before, after, 4);
  EXPECT_EQ(profile.sweeps, 10u);
  EXPECT_DOUBLE_EQ(profile.sweep_wall_ms, 100.0);
  // 6 + 4 + 60 + 4 + 20 + 6 = 100 ms attributed.
  EXPECT_NEAR(profile.accounted_pct, 100.0, 1e-9);
  double kernel_ms = -1.0, barrier_ms = -1.0, fold_ms = -1.0,
         refresh_ms = -1.0;
  for (const PhaseRow& row : profile.rows) {
    if (row.counter == kFitShardKernelNs) kernel_ms = row.wall_ms;
    if (row.counter == kFitBarrierWaitNs) barrier_ms = row.wall_ms;
    if (row.counter == kFitDeltaFoldNs) fold_ms = row.wall_ms;
    if (row.counter == kFitReplicaRefreshNs) refresh_ms = row.wall_ms;
  }
  EXPECT_DOUBLE_EQ(kernel_ms, 60.0);
  EXPECT_DOUBLE_EQ(barrier_ms, 20.0);
  EXPECT_DOUBLE_EQ(fold_ms, 4.0);
  EXPECT_DOUBLE_EQ(refresh_ms, 6.0);
}

TEST(FitProfileTest, PruneAndRebalanceReportedOutsideTheSweepBudget) {
  std::map<std::string, uint64_t> before;
  std::map<std::string, uint64_t> after;
  after[kFitSweepNs] = 100000000;   // 100 ms
  after[kFitPruneNs] = 5000000;     // 5 ms between sweeps
  after[kFitRebalanceNs] = 2000000; // 2 ms between sweeps
  FitProfile profile = ComputeFitProfile(before, after, 4);
  // Between-sweeps phases never count toward the in-sweep 100%.
  EXPECT_NEAR(profile.accounted_pct, 0.0, 1e-9);
  double prune_ms = -1.0, rebalance_ms = -1.0;
  for (const PhaseRow& row : profile.rows) {
    if (row.counter == kFitPruneNs) prune_ms = row.wall_ms;
    if (row.counter == kFitRebalanceNs) rebalance_ms = row.wall_ms;
  }
  EXPECT_DOUBLE_EQ(prune_ms, 5.0);
  EXPECT_DOUBLE_EQ(rebalance_ms, 2.0);
}

TEST(FitProfileTest, DiffsAgainstBeforeSnapshot) {
  std::map<std::string, uint64_t> before{{kFitSweepNs, 40},
                                         {kFitSweepsTotal, 2}};
  std::map<std::string, uint64_t> after{{kFitSweepNs, 100},
                                        {kFitSweepsTotal, 5}};
  FitProfile profile = ComputeFitProfile(before, after, 1);
  EXPECT_EQ(profile.sweeps, 3u);
  EXPECT_DOUBLE_EQ(profile.sweep_wall_ms, 60e-6);
}

}  // namespace
}  // namespace obs

// --------------------------------------------- logging satellites (common/)

namespace {

TEST(LoggingTest, ParseLogLevelAcceptsAliasesCaseInsensitive) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("ERROR", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kInfo);  // untouched on failure
}

TEST(LoggingTest, SetLogLevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, EveryLevelNameRoundTripsThroughParseAndSet) {
  // The MLP_LOG_LEVEL environment variable goes through exactly this path
  // (ParseLogLevel then the atomic level store) at process start, so the
  // canonical spelling of every level must survive a full round trip.
  const LogLevel original = GetLogLevel();
  const struct {
    const char* name;
    LogLevel level;
  } kLevels[] = {{"debug", LogLevel::kDebug},
                 {"info", LogLevel::kInfo},
                 {"warning", LogLevel::kWarning},
                 {"error", LogLevel::kError}};
  for (const auto& entry : kLevels) {
    LogLevel parsed = LogLevel::kInfo;
    ASSERT_TRUE(ParseLogLevel(entry.name, &parsed)) << entry.name;
    EXPECT_EQ(parsed, entry.level) << entry.name;
    SetLogLevel(parsed);
    EXPECT_EQ(GetLogLevel(), entry.level) << entry.name;
  }
  SetLogLevel(original);
}

TEST(LoggingTest, ThreadOrdinalsAreStableAndDistinct) {
  const int mine = CurrentThreadOrdinal();
  EXPECT_EQ(CurrentThreadOrdinal(), mine);  // stable within a thread
  int other = -1;
  std::thread([&other] { other = CurrentThreadOrdinal(); }).join();
  EXPECT_NE(other, mine);
}

TEST(LoggingTest, MonotonicMicrosNeverGoesBackwards) {
  int64_t last = MonotonicMicros();
  for (int i = 0; i < 100; ++i) {
    int64_t now = MonotonicMicros();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace mlp
