// Property tests on the Gibbs sampler's internal invariants: the
// sufficient statistics must stay consistent with the chain state after
// any number of sweeps, noise flags must obey their priors' edge cases,
// and the d^α table must honor its floor.

#include <cmath>

#include <gtest/gtest.h>

#include "core/model.h"
#include "core/pow_table.h"
#include "core/priors.h"
#include "core/random_models.h"
#include "core/sampler.h"
#include "eval/cross_validation.h"
#include "synth/world_generator.h"

namespace mlp {
namespace core {
namespace {

class SamplerInvariantsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldConfig config;
    config.num_users = 500;
    config.seed = 99;
    world_ = new synth::SyntheticWorld(
        std::move(synth::GenerateWorld(config).ValueOrDie()));
    referents_ = new std::vector<std::vector<geo::CityId>>(
        world_->vocab->ReferentTable());
  }
  static void TearDownTestSuite() {
    delete world_;
    delete referents_;
  }

  ModelInput MakeInput() const {
    ModelInput input;
    input.gazetteer = world_->gazetteer.get();
    input.graph = world_->graph.get();
    input.distances = world_->distances.get();
    input.venue_referents = referents_;
    input.observed_home = eval::RegisteredHomes(*world_->graph);
    return input;
  }

  static synth::SyntheticWorld* world_;
  static std::vector<std::vector<geo::CityId>>* referents_;
};

synth::SyntheticWorld* SamplerInvariantsTest::world_ = nullptr;
std::vector<std::vector<geo::CityId>>* SamplerInvariantsTest::referents_ =
    nullptr;

class SweepCountTest : public SamplerInvariantsTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(SweepCountTest, HomesAlwaysValidCandidatesAfterSweeps) {
  ModelInput input = MakeInput();
  MlpConfig config;
  CandidateSpace space = CandidateSpace::Build(input, config);
  RandomModels models = RandomModels::Learn(*input.graph);
  PowTable pow_table(input.distances, config.alpha);
  GibbsSampler sampler(&input, &config, &space, &models, &pow_table);
  Pcg32 rng(5);
  sampler.Initialize(&rng);
  for (int i = 0; i < GetParam(); ++i) sampler.RunSweep(&rng);

  std::vector<geo::CityId> homes = sampler.CurrentHomes();
  ASSERT_EQ(static_cast<int>(homes.size()), input.num_users());
  for (graph::UserId u = 0; u < input.num_users(); ++u) {
    EXPECT_GE(space.SlotOf(u, homes[u]), 0)
        << "home of user " << u << " not in its candidate set";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, SweepCountTest, ::testing::Values(0, 1, 5));

TEST_F(SamplerInvariantsTest, ResultExplanationsStayInCandidateSets) {
  ModelInput input = MakeInput();
  MlpConfig config;
  config.burn_in_iterations = 3;
  config.sampling_iterations = 4;
  MlpModel model(config);
  Result<MlpResult> result = model.Fit(input);
  ASSERT_TRUE(result.ok());
  CandidateSpace space = CandidateSpace::Build(input, config);
  for (graph::EdgeId s = 0; s < input.graph->num_following(); ++s) {
    const graph::FollowingEdge& e = input.graph->following(s);
    EXPECT_GE(space.SlotOf(e.follower, result->following[s].x), 0);
    EXPECT_GE(space.SlotOf(e.friend_user, result->following[s].y), 0);
    EXPECT_GE(result->following[s].noise_prob, 0.0);
    EXPECT_LE(result->following[s].noise_prob, 1.0);
  }
  for (graph::EdgeId k = 0; k < input.graph->num_tweeting(); ++k) {
    const graph::TweetingEdge& e = input.graph->tweeting(k);
    EXPECT_GE(space.SlotOf(e.user, result->tweeting[k].z), 0);
  }
}

TEST_F(SamplerInvariantsTest, ZeroRhoNeverFlagsNoise) {
  ModelInput input = MakeInput();
  MlpConfig config;
  config.rho_f = 0.0;
  config.rho_t = 0.0;
  config.burn_in_iterations = 2;
  config.sampling_iterations = 3;
  MlpModel model(config);
  Result<MlpResult> result = model.Fit(input);
  ASSERT_TRUE(result.ok());
  for (const FollowingExplanation& ex : result->following) {
    EXPECT_DOUBLE_EQ(ex.noise_prob, 0.0);
  }
  for (const TweetExplanation& ex : result->tweeting) {
    EXPECT_DOUBLE_EQ(ex.noise_prob, 0.0);
  }
}

TEST_F(SamplerInvariantsTest, ModelNoiseOffEqualsZeroRho) {
  ModelInput input = MakeInput();
  MlpConfig a;
  a.model_noise = false;
  a.burn_in_iterations = 2;
  a.sampling_iterations = 3;
  MlpConfig b = a;
  b.model_noise = true;
  b.rho_f = 0.0;
  b.rho_t = 0.0;
  Result<MlpResult> ra = MlpModel(a).Fit(input);
  Result<MlpResult> rb = MlpModel(b).Fit(input);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->home, rb->home);
}

TEST_F(SamplerInvariantsTest, AssignmentHistogramBoundedByLabeledEdges) {
  ModelInput input = MakeInput();
  MlpConfig config;
  CandidateSpace space = CandidateSpace::Build(input, config);
  RandomModels models = RandomModels::Learn(*input.graph);
  PowTable pow_table(input.distances, config.alpha);
  GibbsSampler sampler(&input, &config, &space, &models, &pow_table);
  Pcg32 rng(7);
  sampler.Initialize(&rng);
  for (int i = 0; i < 3; ++i) sampler.RunSweep(&rng);
  sampler.ResetAccumulators();
  for (int i = 0; i < 4; ++i) {
    sampler.RunSweep(&rng);
    sampler.AccumulateSample();
  }
  int labeled_edges = 0;
  for (graph::EdgeId s = 0; s < input.graph->num_following(); ++s) {
    const graph::FollowingEdge& e = input.graph->following(s);
    if (input.IsLabeled(e.follower) && input.IsLabeled(e.friend_user)) {
      ++labeled_edges;
    }
  }
  std::vector<double> hist = sampler.AssignmentDistanceHistogram(4000);
  double total = 0.0;
  for (double h : hist) total += h;
  // Averaged over samples, at most one count per labeled location-based
  // edge.
  EXPECT_LE(total, static_cast<double>(labeled_edges) + 1e-9);
  EXPECT_GT(total, 0.0);
}

// ------------------------------------------------------------- pow table

TEST(PowTableFloorTest, FloorRaisesShortDistances) {
  geo::Gazetteer gaz = geo::Gazetteer::FromEmbedded();
  geo::CityDistanceMatrix dist(gaz, 1.0);
  PowTable floored(&dist, -0.5, /*floor_miles=*/10.0);
  geo::CityId austin = gaz.Find("Austin", "TX");
  geo::CityId rr = gaz.Find("Round Rock", "TX");  // ~17 miles apart
  // Same city: max(0, 10)^-0.5.
  EXPECT_NEAR(floored.Get(austin, austin), std::pow(10.0, -0.5), 1e-6);
  // 17 miles: above the floor, so the true distance applies.
  EXPECT_NEAR(floored.Get(austin, rr),
              std::pow(dist.raw_miles(austin, rr), -0.5), 1e-5);
  EXPECT_DOUBLE_EQ(floored.floor_miles(), 10.0);
}

TEST(PowTableFloorTest, FloorNeverBelowMatrixFloor) {
  geo::Gazetteer gaz = geo::Gazetteer::FromEmbedded();
  geo::CityDistanceMatrix dist(gaz, 5.0);
  PowTable table(&dist, -0.5, /*floor_miles=*/1.0);
  EXPECT_DOUBLE_EQ(table.floor_miles(), 5.0);
}

}  // namespace
}  // namespace core
}  // namespace mlp
