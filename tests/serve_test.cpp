// Tests for the online query subsystem (src/serve/): JSON round-trips,
// LRU cache behavior, snapshot → ReadModel parity (v1 and v2/pruned
// formats), the request batcher, and full HTTP round trips against a
// ModelServer on an ephemeral port — including the acceptance contract
// that served posteriors are byte-consistent with MlpResult.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "io/model_snapshot.h"
#include "obs/trace.h"
#include "serve/http_server.h"
#include "serve/json.h"
#include "serve/model_server.h"
#include "serve/read_model.h"
#include "serve/request_batcher.h"
#include "serve/response_cache.h"
#include "synth/world_generator.h"

namespace mlp {
namespace serve {
namespace {

// ------------------------------------------------------------------- json

TEST(JsonTest, WriterEmitsValidNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("Austin \"ATX\", TX\n");
  w.Key("ids");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("p");
  w.Double(0.25);
  w.Key("flag");
  w.Bool(true);
  w.Key("none");
  w.Null();
  w.EndObject();
  w.EndObject();
  const std::string text = w.str();
  EXPECT_EQ(text,
            "{\"name\":\"Austin \\\"ATX\\\", TX\\n\",\"ids\":[1,2],"
            "\"nested\":{\"p\":0.25,\"flag\":true,\"none\":null}}");
  Result<JsonValue> parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("name")->string_value, "Austin \"ATX\", TX\n");
  EXPECT_EQ(parsed->Find("ids")->items.size(), 2u);
  EXPECT_EQ(parsed->Find("nested")->Find("p")->AsDouble(), 0.25);
}

TEST(JsonTest, DoubleRenderingRoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e-17, 123456789.123456789, -0.0,
                   0.9999999999999999}) {
    std::string text = JsonDouble(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(JsonTest, ParserHandlesEscapesAndNumbers) {
  Result<JsonValue> v = ParseJson(" { \"a\" : [ -1.5e2 , \"\\u0041\" ] } ");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 2u);
  EXPECT_EQ(a->items[0].AsDouble(), -150.0);
  EXPECT_EQ(a->items[1].string_value, "A");
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,2,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  // Nesting bomb stays bounded instead of overflowing the stack.
  EXPECT_FALSE(ParseJson(std::string(5000, '[')).ok());
}

// ------------------------------------------------------------------ cache

TEST(ResponseCacheTest, HitMissAndLruEviction) {
  // One shard, tiny budget, so eviction order is observable.
  ResponseCache cache(3 * 70, 1);
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));
  cache.Put("a", "1");
  cache.Put("b", "2");
  cache.Put("c", "3");
  EXPECT_TRUE(cache.Get("a", &value));
  EXPECT_EQ(value, "1");
  // "b" is now least recent; inserting "d" evicts it.
  cache.Put("d", "4");
  EXPECT_FALSE(cache.Get("b", &value));
  EXPECT_TRUE(cache.Get("a", &value));
  EXPECT_TRUE(cache.Get("d", &value));
  ResponseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 3u);  // a, a, d
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_GE(stats.evictions, 1u);
}

TEST(ResponseCacheTest, ZeroCapacityDisablesCaching) {
  ResponseCache cache(0);
  cache.Put("a", "1");
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));
}

TEST(ResponseCacheTest, OversizedEntriesAreNotCached) {
  ResponseCache cache(128, 1);
  cache.Put("big", std::string(4096, 'x'));
  std::string value;
  EXPECT_FALSE(cache.Get("big", &value));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

// -------------------------------------------------- fit/snapshot fixtures

synth::SyntheticWorld TestWorld(int num_users, uint64_t seed) {
  synth::WorldConfig config;
  config.num_users = num_users;
  config.seed = seed;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  EXPECT_TRUE(world.ok());
  return std::move(*world);
}

struct FitHarness {
  explicit FitHarness(const synth::SyntheticWorld& world) {
    input.gazetteer = world.gazetteer.get();
    input.graph = world.graph.get();
    input.distances = world.distances.get();
    referents = world.vocab->ReferentTable();
    input.venue_referents = &referents;
    input.observed_home.reserve(world.graph->num_users());
    for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
      input.observed_home.push_back(world.graph->user(u).registered_city);
    }
  }
  core::ModelInput input;
  std::vector<std::vector<geo::CityId>> referents;
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Fits a small model and returns its snapshot (written+reloaded when
/// `path` is non-empty, so the on-disk format is part of the loop).
io::ModelSnapshot FitSnapshot(const synth::SyntheticWorld& world,
                              const core::MlpConfig& config,
                              const std::string& path) {
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::FitOptions opts;
  opts.checkpoint_out = &checkpoint;
  Result<core::MlpResult> result = core::MlpModel(config).Fit(harness.input, opts);
  EXPECT_TRUE(result.ok());
  io::ModelSnapshot snapshot =
      io::MakeModelSnapshot(harness.input, checkpoint, *result);
  if (!path.empty()) {
    EXPECT_TRUE(io::SaveModelSnapshot(path, snapshot).ok());
    Result<io::ModelSnapshot> loaded = io::LoadModelSnapshot(path);
    EXPECT_TRUE(loaded.ok());
    return std::move(*loaded);
  }
  return snapshot;
}

core::MlpConfig SmallConfig() {
  core::MlpConfig config;
  config.burn_in_iterations = 3;
  config.sampling_iterations = 3;
  config.seed = 99;
  return config;
}

/// Asserts the acceptance contract: every user's served answer reproduces
/// MlpResult exactly — same argmax home, same top-K cities, and posterior
/// probabilities equal to the last bit.
void ExpectServedParity(const ReadModel& model, const core::MlpResult& result,
                        int top_k) {
  ASSERT_EQ(model.num_users(), static_cast<int>(result.home.size()));
  for (graph::UserId u = 0; u < model.num_users(); ++u) {
    UserAnswer answer;
    ASSERT_TRUE(model.GetUser(u, &answer));
    EXPECT_EQ(answer.home, result.home[u]) << "user " << u;
    const auto& entries = result.profiles[u].entries();
    int expected = static_cast<int>(entries.size());
    if (top_k > 0) expected = std::min(expected, top_k);
    ASSERT_EQ(answer.entry_count, expected) << "user " << u;
    for (int i = 0; i < expected; ++i) {
      EXPECT_EQ(answer.entries[i].city, entries[i].first) << "user " << u;
      EXPECT_EQ(answer.entries[i].prob, entries[i].second) << "user " << u;
    }
  }
}

// -------------------------------------------------------- read model parity

TEST(ReadModelTest, V2SnapshotServedHomesMatchMlpResult) {
  synth::SyntheticWorld world = TestWorld(220, 7);
  io::ModelSnapshot snapshot =
      FitSnapshot(world, SmallConfig(), TempPath("serve_v2.snap"));
  ReadModelOptions options;
  options.top_k = 5;
  Result<ReadModel> model = ReadModel::Build(snapshot, *world.graph,
                                             world.gazetteer.get(), options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ExpectServedParity(*model, snapshot.result, 5);
}

TEST(ReadModelTest, PrunedV2SnapshotServedHomesMatchMlpResult) {
  synth::SyntheticWorld world = TestWorld(220, 8);
  core::MlpConfig config = SmallConfig();
  config.burn_in_iterations = 6;
  config.prune_floor = 0.2;  // aggressive, so pruning definitely fires
  config.prune_patience = 1;
  io::ModelSnapshot snapshot =
      FitSnapshot(world, config, TempPath("serve_v2_pruned.snap"));
  // The point of this fixture is a snapshot whose arena is compacted.
  ASSERT_FALSE(snapshot.checkpoint.activation.history.empty())
      << "pruning never fired — floor/patience need retuning";
  Result<ReadModel> model =
      ReadModel::Build(snapshot, *world.graph, world.gazetteer.get());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ExpectServedParity(*model, snapshot.result, 10);
}

TEST(ReadModelTest, V1SnapshotServedHomesMatchMlpResult) {
  synth::SyntheticWorld world = TestWorld(220, 9);
  io::ModelSnapshot snapshot = FitSnapshot(world, SmallConfig(), "");
  const std::string path = TempPath("serve_v1.snap");
  ASSERT_TRUE(io::SaveModelSnapshotV1(path, snapshot).ok());
  Result<io::ModelSnapshot> loaded = io::LoadModelSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  Result<ReadModel> model =
      ReadModel::Build(*loaded, *world.graph, world.gazetteer.get());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ExpectServedParity(*model, snapshot.result, 10);
}

TEST(ReadModelTest, EdgeLookupsMatchStoredExplanations) {
  synth::SyntheticWorld world = TestWorld(220, 7);
  io::ModelSnapshot snapshot = FitSnapshot(world, SmallConfig(), "");
  Result<ReadModel> model =
      ReadModel::Build(snapshot, *world.graph, world.gazetteer.get());
  ASSERT_TRUE(model.ok());
  ASSERT_GT(model->num_edges(), 0);
  for (graph::EdgeId s = 0; s < model->num_edges(); ++s) {
    const graph::FollowingEdge& edge = world.graph->following(s);
    EdgeAnswer answer;
    ASSERT_TRUE(model->GetEdge(edge.follower, edge.friend_user, &answer));
    EXPECT_EQ(answer.src, edge.follower);
    EXPECT_EQ(answer.dst, edge.friend_user);
    EXPECT_EQ(answer.x, snapshot.result.following[answer.edge].x);
    EXPECT_EQ(answer.y, snapshot.result.following[answer.edge].y);
    EXPECT_EQ(answer.noise_prob,
              snapshot.result.following[answer.edge].noise_prob);
    EXPECT_GE(answer.x_support, 0.0);
    EXPECT_LE(answer.x_support, 1.0);
    EXPECT_GE(answer.y_support, 0.0);
    EXPECT_LE(answer.y_support, 1.0);
  }
  EdgeAnswer missing;
  EXPECT_FALSE(model->GetEdge(-1, 0, &missing));
  UserAnswer no_user;
  EXPECT_FALSE(model->GetUser(model->num_users(), &no_user));
}

TEST(ReadModelTest, RejectsMismatchedGraph) {
  synth::SyntheticWorld world = TestWorld(220, 7);
  synth::SyntheticWorld other = TestWorld(150, 11);
  io::ModelSnapshot snapshot = FitSnapshot(world, SmallConfig(), "");
  Result<ReadModel> model =
      ReadModel::Build(snapshot, *other.graph, other.gazetteer.get());
  EXPECT_FALSE(model.ok());
}

// ------------------------------------------------------ mmap-backed parity

/// Packs the snapshot at `path` with a serve section rendered from the
/// in-memory ReadModel, maps it back, and asserts the mapped serving
/// surface (UserJson / EdgeJson / FindEdge / statsz metadata) is
/// byte-identical to the in-memory one — the out-of-core contract.
void ExpectMmapParity(const std::string& path,
                      const synth::SyntheticWorld& world,
                      const io::ModelSnapshot& snapshot) {
  Result<ReadModel> mem =
      ReadModel::Build(snapshot, *world.graph, world.gazetteer.get());
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();
  Status packed = mem->AppendServeSection(path);
  ASSERT_TRUE(packed.ok()) << packed.ToString();
  // Packing must not disturb the core payload: the classic loader still
  // accepts the file (it tolerates the trailing section).
  EXPECT_TRUE(io::LoadModelSnapshot(path).ok());

  Result<ReadModel> mapped =
      ReadModel::MapServeSection(path, world.gazetteer.get());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->mmap_backed());
  EXPECT_FALSE(mem->mmap_backed());

  // /statsz metadata parity.
  ASSERT_EQ(mapped->num_users(), mem->num_users());
  ASSERT_EQ(mapped->num_edges(), mem->num_edges());
  EXPECT_EQ(mapped->alpha(), mem->alpha());
  EXPECT_EQ(mapped->beta(), mem->beta());
  EXPECT_EQ(mapped->fit_complete(), mem->fit_complete());
  EXPECT_EQ(mapped->active_candidate_slots(), mem->active_candidate_slots());
  EXPECT_EQ(mapped->candidate_layout_version(),
            mem->candidate_layout_version());
  EXPECT_EQ(mapped->mean_profile_entries(), mem->mean_profile_entries());

  // Rendered responses, byte for byte, across every user and edge.
  for (graph::UserId u = 0; u < mem->num_users(); ++u) {
    ASSERT_EQ(mapped->UserJson(u), mem->UserJson(u)) << "user " << u;
  }
  for (graph::EdgeId s = 0; s < mem->num_edges(); ++s) {
    ASSERT_EQ(mapped->EdgeJson(s), mem->EdgeJson(s)) << "edge " << s;
  }
  EXPECT_EQ(mapped->UserJson(-1), std::string_view());
  EXPECT_EQ(mapped->UserJson(mem->num_users()), std::string_view());
  EXPECT_EQ(mapped->EdgeJson(mem->num_edges()), std::string_view());

  // Edge-index agreement, present and absent keys alike — the binary
  // search over the sorted section table must resolve duplicates the
  // same way as the in-memory hash map.
  for (graph::EdgeId s = 0; s < mem->num_edges(); ++s) {
    const graph::FollowingEdge& edge = world.graph->following(s);
    EXPECT_EQ(mapped->FindEdge(edge.follower, edge.friend_user),
              mem->FindEdge(edge.follower, edge.friend_user))
        << "edge " << s;
  }
  const graph::UserId absent = mem->num_users() + 7;
  EXPECT_EQ(mapped->FindEdge(0, absent), -1);
  EXPECT_EQ(mapped->FindEdge(0, absent), mem->FindEdge(0, absent));

  // Struct-path lookups are in-memory-only: the section carries rendered
  // responses, not the column arrays behind UserAnswer/EdgeAnswer.
  UserAnswer user_answer;
  EXPECT_FALSE(mapped->GetUser(0, &user_answer));
  graph::UserId src = graph::kInvalidUser;
  graph::UserId dst = graph::kInvalidUser;
  if (mapped->ExampleEdge(&src, &dst)) {
    EXPECT_EQ(mapped->FindEdge(src, dst), mem->FindEdge(src, dst));
    EdgeAnswer edge_answer;
    EXPECT_FALSE(mapped->GetEdge(src, dst, &edge_answer));
  }
}

TEST(ReadModelMmapTest, V2PackedSnapshotServesByteIdenticalResponses) {
  synth::SyntheticWorld world = TestWorld(220, 7);
  const std::string path = TempPath("mmap_v2.snap");
  io::ModelSnapshot snapshot = FitSnapshot(world, SmallConfig(), path);
  ExpectMmapParity(path, world, snapshot);
}

TEST(ReadModelMmapTest, V1PackedSnapshotServesByteIdenticalResponses) {
  synth::SyntheticWorld world = TestWorld(220, 9);
  io::ModelSnapshot snapshot = FitSnapshot(world, SmallConfig(), "");
  const std::string path = TempPath("mmap_v1.snap");
  ASSERT_TRUE(io::SaveModelSnapshotV1(path, snapshot).ok());
  Result<io::ModelSnapshot> loaded = io::LoadModelSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  ExpectMmapParity(path, world, *loaded);
}

TEST(ReadModelMmapTest, PrunedSnapshotServesByteIdenticalResponses) {
  synth::SyntheticWorld world = TestWorld(220, 8);
  core::MlpConfig config = SmallConfig();
  config.burn_in_iterations = 6;
  config.prune_floor = 0.2;
  config.prune_patience = 1;
  const std::string path = TempPath("mmap_pruned.snap");
  io::ModelSnapshot snapshot = FitSnapshot(world, config, path);
  ASSERT_FALSE(snapshot.checkpoint.activation.history.empty())
      << "pruning never fired — floor/patience need retuning";
  ExpectMmapParity(path, world, snapshot);
}

TEST(ReadModelMmapTest, RepackingIsIdempotent) {
  synth::SyntheticWorld world = TestWorld(150, 12);
  const std::string path = TempPath("mmap_repack.snap");
  io::ModelSnapshot snapshot = FitSnapshot(world, SmallConfig(), path);
  Result<ReadModel> mem =
      ReadModel::Build(snapshot, *world.graph, world.gazetteer.get());
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(mem->AppendServeSection(path).ok());
  // A second pack replaces the section in place instead of stacking a
  // new one after it.
  ASSERT_TRUE(mem->AppendServeSection(path).ok());
  Result<ReadModel> mapped =
      ReadModel::MapServeSection(path, world.gazetteer.get());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->UserJson(0), mem->UserJson(0));
}

TEST(ReadModelMmapTest, UnpackedSnapshotReportsMissingSection) {
  synth::SyntheticWorld world = TestWorld(150, 13);
  const std::string path = TempPath("mmap_unpacked.snap");
  FitSnapshot(world, SmallConfig(), path);
  Result<ReadModel> mapped =
      ReadModel::MapServeSection(path, world.gazetteer.get());
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().ToString().find("pack"), std::string::npos)
      << mapped.status().ToString();
}

// ---------------------------------------------------------------- batcher

TEST(RequestBatcherTest, BatchAnswersEqualPointAnswers) {
  synth::SyntheticWorld world = TestWorld(220, 7);
  io::ModelSnapshot snapshot = FitSnapshot(world, SmallConfig(), "");
  Result<ReadModel> model =
      ReadModel::Build(snapshot, *world.graph, world.gazetteer.get());
  ASSERT_TRUE(model.ok());

  engine::ThreadPool pool(4);
  // min_parallel_items = 8 forces the chunked parallel path.
  RequestBatcher batcher(&*model, &pool, 8);
  BatchRequest request;
  for (graph::UserId u = model->num_users() - 1; u >= 0; --u) {
    request.users.push_back(u);  // reverse order: exercises the sort
  }
  request.users.push_back(10 * model->num_users());  // missing
  for (graph::EdgeId s = 0; s < std::min(50, model->num_edges()); ++s) {
    const graph::FollowingEdge& edge = world.graph->following(s);
    request.edges.emplace_back(edge.follower, edge.friend_user);
  }
  request.edges.emplace_back(-5, -6);  // missing

  BatchResult result = batcher.Execute(request);
  ASSERT_EQ(result.users.size(), request.users.size());
  ASSERT_EQ(result.edges.size(), request.edges.size());
  for (size_t i = 0; i < request.users.size(); ++i) {
    UserAnswer point;
    bool found = model->GetUser(request.users[i], &point);
    ASSERT_EQ(result.user_found[i] != 0, found) << i;
    if (!found) continue;
    EXPECT_EQ(result.users[i].user, point.user);
    EXPECT_EQ(result.users[i].home, point.home);
    EXPECT_EQ(result.users[i].entries, point.entries);
    EXPECT_EQ(result.users[i].entry_count, point.entry_count);
  }
  for (size_t i = 0; i < request.edges.size(); ++i) {
    EdgeAnswer point;
    bool found =
        model->GetEdge(request.edges[i].first, request.edges[i].second, &point);
    ASSERT_EQ(result.edge_found[i] != 0, found) << i;
    if (!found) continue;
    EXPECT_EQ(result.edges[i].edge, point.edge);
    EXPECT_EQ(result.edges[i].noise_prob, point.noise_prob);
  }
}

// ------------------------------------------------------- http round trips

class ModelServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new synth::SyntheticWorld(TestWorld(220, 7));
    snapshot_ = new io::ModelSnapshot(
        FitSnapshot(*world_, SmallConfig(), TempPath("serve_http.snap")));
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    delete world_;
    snapshot_ = nullptr;
    world_ = nullptr;
  }

  /// Starts a fresh server on an ephemeral port with explicit options
  /// (port is forced to 0).
  std::unique_ptr<ModelServer> StartServerWithOptions(ServeOptions options) {
    Result<ReadModel> model = ReadModel::Build(*snapshot_, *world_->graph,
                                               world_->gazetteer.get());
    EXPECT_TRUE(model.ok());
    options.port = 0;
    auto server =
        std::make_unique<ModelServer>(std::move(*model), options);
    EXPECT_TRUE(server->Start().ok());
    EXPECT_GT(server->port(), 0);
    return server;
  }

  /// Starts a fresh server on an ephemeral port.
  std::unique_ptr<ModelServer> StartServer(int threads = 4, int cache_mb = 4) {
    ServeOptions options;
    options.threads = threads;
    options.cache_mb = cache_mb;
    return StartServerWithOptions(options);
  }

  static synth::SyntheticWorld* world_;
  static io::ModelSnapshot* snapshot_;
};

synth::SyntheticWorld* ModelServerTest::world_ = nullptr;
io::ModelSnapshot* ModelServerTest::snapshot_ = nullptr;

TEST_F(ModelServerTest, HealthzAndStatsz) {
  auto server = StartServer();
  Result<HttpResponse> health =
      HttpFetch("127.0.0.1", server->port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  Result<JsonValue> parsed = ParseJson(health->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("status")->string_value, "ok");

  Result<HttpResponse> stats =
      HttpFetch("127.0.0.1", server->port(), "GET", "/statsz");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 200);
  Result<JsonValue> stats_json = ParseJson(stats->body);
  ASSERT_TRUE(stats_json.ok());
  EXPECT_NE(stats_json->Find("users"), nullptr);

  // CSV rendering shares io::TablePrinter::ToCsv.
  Result<HttpResponse> csv =
      HttpFetch("127.0.0.1", server->port(), "GET", "/statsz?format=csv");
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->status, 200);
  EXPECT_EQ(csv->body.rfind("stat,value\n", 0), 0u) << csv->body;

  // Cache byte budget and pool queue depths are part of the operator
  // surface in every format.
  EXPECT_NE(stats_json->Find("cache_bytes"), nullptr);
  EXPECT_NE(stats_json->Find("cache_capacity_bytes"), nullptr);
  EXPECT_NE(stats_json->Find("conn_queue_depth"), nullptr);
  EXPECT_NE(stats_json->Find("batch_queue_depth"), nullptr);
  EXPECT_NE(csv->body.find("batch_queue_depth,"), std::string::npos);
}

TEST_F(ModelServerTest, MetricszServesPrometheusExposition) {
  auto server = StartServer();
  // Prime the latency histogram with a couple of requests first.
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", server->port(), "GET", "/v1/user/0").ok());
  ASSERT_TRUE(HttpFetch("127.0.0.1", server->port(), "GET", "/healthz").ok());

  Result<HttpResponse> metrics =
      HttpFetch("127.0.0.1", server->port(), "GET", "/metricsz");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->status, 200);
  const std::string& body = metrics->body;

  // Request-latency histogram: TYPE line, cumulative le buckets including
  // +Inf, sum and count — and the count covers the requests above.
  EXPECT_NE(body.find("# TYPE serve_request_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("serve_request_latency_us_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(body.find("serve_request_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(body.find("serve_request_latency_us_sum"), std::string::npos);
  EXPECT_NE(body.find("serve_request_latency_us_count"), std::string::npos);

  // Cache counters and occupancy gauges, queue depths, model generation.
  EXPECT_NE(body.find("# TYPE serve_cache_hits counter"), std::string::npos);
  EXPECT_NE(body.find("# TYPE serve_cache_misses counter"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE serve_cache_bytes gauge"), std::string::npos);
  EXPECT_NE(body.find("# TYPE serve_cache_capacity_bytes gauge"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE serve_conn_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE serve_batch_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(body.find("serve_model_generation 1"), std::string::npos);

  // The process-wide registry rides along (requests counter at minimum).
  EXPECT_NE(body.find("# TYPE serve_requests_total counter"),
            std::string::npos);

  // Every line is "# ..." commentary or "name[{labels}] value" — a cheap
  // exposition-format well-formedness pass.
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    EXPECT_NE(value.find_first_of("0123456789"), std::string::npos) << line;
  }
}

TEST_F(ModelServerTest, ServedUserJsonIsByteConsistentWithMlpResult) {
  auto server = StartServer();
  Result<HttpClient> connected = HttpClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  HttpClient client = std::move(connected).ValueOrDie();
  for (graph::UserId u = 0; u < 25; ++u) {
    Result<HttpResponse> response =
        client.RoundTrip("GET", "/v1/user/" + std::to_string(u));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200);
    Result<JsonValue> parsed = ParseJson(response->body);
    ASSERT_TRUE(parsed.ok());
    // Argmax home parity.
    const JsonValue* home = parsed->Find("home");
    ASSERT_NE(home, nullptr);
    if (snapshot_->result.home[u] == geo::kInvalidCity) {
      EXPECT_EQ(home->type, JsonValue::Type::kNull);
    } else {
      EXPECT_EQ(home->Find("city_id")->AsInt(-1), snapshot_->result.home[u]);
    }
    // Posterior parity to the last bit: the JSON doubles parse back to
    // exactly the MlpResult values.
    const JsonValue* profile = parsed->Find("profile");
    ASSERT_NE(profile, nullptr);
    const auto& entries = snapshot_->result.profiles[u].entries();
    size_t expected = std::min<size_t>(entries.size(), 10);
    ASSERT_EQ(profile->items.size(), expected);
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(profile->items[i].Find("city_id")->AsInt(-1),
                entries[i].first);
      EXPECT_EQ(profile->items[i].Find("p")->AsDouble(), entries[i].second);
    }
  }
}

TEST_F(ModelServerTest, EdgeEndpointServesExplanations) {
  auto server = StartServer();
  ASSERT_GT(world_->graph->num_following(), 0);
  const graph::FollowingEdge& edge = world_->graph->following(0);
  Result<HttpResponse> response = HttpFetch(
      "127.0.0.1", server->port(), "GET",
      "/v1/edge/" + std::to_string(edge.follower) + "/" +
          std::to_string(edge.friend_user));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  Result<JsonValue> parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* explanation = parsed->Find("explanation");
  ASSERT_NE(explanation, nullptr);
  EXPECT_EQ(explanation->Find("noise_prob")->AsDouble(),
            snapshot_->result.following[0].noise_prob);
  EXPECT_NE(explanation->Find("x_support"), nullptr);
  EXPECT_NE(explanation->Find("distance_miles"), nullptr);

  // Errors: absent edge and malformed ids.
  Result<HttpResponse> missing = HttpFetch(
      "127.0.0.1", server->port(), "GET",
      "/v1/edge/" + std::to_string(edge.follower) + "/" +
          std::to_string(edge.follower));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  Result<HttpResponse> bad =
      HttpFetch("127.0.0.1", server->port(), "GET", "/v1/edge/x/y");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
}

TEST_F(ModelServerTest, BatchEndpointMatchesPointQueries) {
  auto server = StartServer();
  const graph::FollowingEdge& edge = world_->graph->following(0);
  std::string body = "{\"users\":[0,1,999999],\"edges\":[[" +
                     std::to_string(edge.follower) + "," +
                     std::to_string(edge.friend_user) + "]]}";
  Result<HttpResponse> batch =
      HttpFetch("127.0.0.1", server->port(), "POST", "/v1/batch", body);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->status, 200) << batch->body;
  Result<JsonValue> parsed = ParseJson(batch->body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* users = parsed->Find("users");
  ASSERT_NE(users, nullptr);
  ASSERT_EQ(users->items.size(), 3u);
  EXPECT_EQ(users->items[2].type, JsonValue::Type::kNull);  // 999999
  const JsonValue* edges = parsed->Find("edges");
  ASSERT_EQ(edges->items.size(), 1u);

  // The batch user objects are rendered by the same code path as the
  // point endpoint, so the point body appears verbatim inside the batch
  // body (byte-consistency across endpoints).
  Result<HttpResponse> point =
      HttpFetch("127.0.0.1", server->port(), "GET", "/v1/user/0");
  ASSERT_TRUE(point.ok());
  EXPECT_NE(batch->body.find(point->body), std::string::npos)
      << point->body << "\nnot found in\n"
      << batch->body;

  Result<HttpResponse> rejected =
      HttpFetch("127.0.0.1", server->port(), "POST", "/v1/batch", "{nope");
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 400);
}

TEST_F(ModelServerTest, CacheServesRepeatLookups) {
  auto server = StartServer();
  for (int i = 0; i < 3; ++i) {
    Result<HttpResponse> response =
        HttpFetch("127.0.0.1", server->port(), "GET", "/v1/user/3");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  }
  Result<HttpResponse> stats =
      HttpFetch("127.0.0.1", server->port(), "GET", "/statsz");
  ASSERT_TRUE(stats.ok());
  Result<JsonValue> parsed = ParseJson(stats->body);
  ASSERT_TRUE(parsed.ok());
  // First lookup missed and populated; the two repeats hit.
  EXPECT_EQ(parsed->Find("cache_hits")->string_value, "2");
  EXPECT_EQ(parsed->Find("cache_misses")->string_value, "1");
}

TEST_F(ModelServerTest, UnknownEndpointsAnd404s) {
  auto server = StartServer();
  Result<HttpResponse> nope =
      HttpFetch("127.0.0.1", server->port(), "GET", "/v2/everything");
  ASSERT_TRUE(nope.ok());
  EXPECT_EQ(nope->status, 404);
  Result<HttpResponse> no_user =
      HttpFetch("127.0.0.1", server->port(), "GET", "/v1/user/123456789");
  ASSERT_TRUE(no_user.ok());
  EXPECT_EQ(no_user->status, 404);
  Result<HttpResponse> bad_id =
      HttpFetch("127.0.0.1", server->port(), "GET", "/v1/user/abc");
  ASSERT_TRUE(bad_id.ok());
  EXPECT_EQ(bad_id->status, 400);
  // Ids past int32 must 404, not alias-wrap onto a valid user (2^32 -> 0).
  Result<HttpResponse> wrapped =
      HttpFetch("127.0.0.1", server->port(), "GET", "/v1/user/4294967296");
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(wrapped->status, 404);
  Result<HttpResponse> wrapped_edge = HttpFetch(
      "127.0.0.1", server->port(), "GET", "/v1/edge/4294967296/4294967297");
  ASSERT_TRUE(wrapped_edge.ok());
  EXPECT_EQ(wrapped_edge->status, 404);
  Result<HttpResponse> wrong_method =
      HttpFetch("127.0.0.1", server->port(), "POST", "/v1/user/1", "{}");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
}

// ----------------------------------------- request tracing (ISSUE 9)

TEST_F(ModelServerTest, MetricszExposesPerEndpointAndStageSeries) {
  auto server = StartServer();
  // One miss then one hit on the same user primes both outcome histograms.
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", server->port(), "GET", "/v1/user/1").ok());
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", server->port(), "GET", "/v1/user/1").ok());
  Result<HttpResponse> metrics =
      HttpFetch("127.0.0.1", server->port(), "GET", "/metricsz");
  ASSERT_TRUE(metrics.ok());
  const std::string& body = metrics->body;
  EXPECT_NE(body.find("# TYPE serve_user_miss_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE serve_user_hit_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE serve_stage_render_ns counter"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE serve_stage_write_ns counter"),
            std::string::npos);
  EXPECT_NE(body.find("serve_seconds_since_last_swap"), std::string::npos);
  // Satellite: the scrape refreshes the process RSS gauges in place.
  EXPECT_NE(body.find("mem_process_rss_bytes"), std::string::npos);
  EXPECT_NE(body.find("mem_process_peak_rss_bytes"), std::string::npos);
}

TEST_F(ModelServerTest, StatuszDashboardReportsLatencyAndModelState) {
  auto server = StartServer();
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", server->port(), "GET", "/v1/user/2").ok());
  Result<HttpResponse> statusz =
      HttpFetch("127.0.0.1", server->port(), "GET", "/statusz");
  ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
  EXPECT_EQ(statusz->status, 200);
  // The test client does not surface response headers; the HTML doctype
  // in the body is the content-type witness.
  const std::string& body = statusz->body;
  EXPECT_EQ(body.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(body.find("model_generation"), std::string::npos);
  EXPECT_NE(body.find("seconds_since_last_swap"), std::string::npos);
  EXPECT_NE(body.find("cache_hit_ratio"), std::string::npos);
  EXPECT_NE(body.find("vm_rss_bytes"), std::string::npos);
  EXPECT_NE(body.find("<th>p99</th>"), std::string::npos);
  EXPECT_NE(body.find("user (miss)"), std::string::npos);
  EXPECT_NE(body.find("qps"), std::string::npos);
}

TEST_F(ModelServerTest, SlowzCapturesStageBreakdownsAndHonorsCapacity) {
  ServeOptions options;
  options.threads = 2;
  options.slow_request_us = 1;  // everything is "slow"
  options.slow_ring_capacity = 4;
  auto server = StartServerWithOptions(options);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(HttpFetch("127.0.0.1", server->port(), "GET",
                          "/v1/user/" + std::to_string(i))
                    .ok());
  }
  // An extra round trip gives the last on_complete hook time to land
  // before the scrape reads the ring.
  ASSERT_TRUE(HttpFetch("127.0.0.1", server->port(), "GET", "/healthz").ok());
  Result<HttpResponse> slowz =
      HttpFetch("127.0.0.1", server->port(), "GET", "/debug/slowz");
  ASSERT_TRUE(slowz.ok());
  ASSERT_EQ(slowz->status, 200);
  Result<JsonValue> parsed = ParseJson(slowz->body);
  ASSERT_TRUE(parsed.ok()) << slowz->body;
  EXPECT_EQ(parsed->Find("threshold_us")->AsInt(-1), 1);
  EXPECT_EQ(parsed->Find("capacity")->AsInt(-1), 4);
  const JsonValue* requests = parsed->Find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_GE(requests->items.size(), 1u);
  ASSERT_LE(requests->items.size(), 4u);  // ring capacity bounds retention
  EXPECT_GE(parsed->Find("total_captured")->AsInt(-1),
            static_cast<int64_t>(requests->items.size()));
  for (const JsonValue& record : requests->items) {
    EXPECT_GT(record.Find("id")->AsInt(-1), 0);
    EXPECT_GE(record.Find("total_us")->AsInt(-1), 0);
    EXPECT_FALSE(record.Find("target")->string_value.empty());
    const JsonValue* stages = record.Find("stages");
    ASSERT_NE(stages, nullptr);
    EXPECT_NE(stages->Find("parse_us"), nullptr);
    EXPECT_NE(stages->Find("cache_lookup_us"), nullptr);
    EXPECT_NE(stages->Find("batch_queue_wait_us"), nullptr);
    EXPECT_NE(stages->Find("render_us"), nullptr);
    EXPECT_NE(stages->Find("write_us"), nullptr);
  }
}

TEST_F(ModelServerTest, AccessLogLinesCorrelateWithSlowRingIds) {
  const std::string log_path = TempPath("serve_access_test.log");
  std::remove(log_path.c_str());
  ServeOptions options;
  options.threads = 2;
  options.access_log = true;
  options.access_log_path = log_path;
  options.slow_request_us = 1;
  auto server = StartServerWithOptions(options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(HttpFetch("127.0.0.1", server->port(), "GET",
                          "/v1/user/" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(HttpFetch("127.0.0.1", server->port(), "GET", "/healthz").ok());
  Result<HttpResponse> slowz =
      HttpFetch("127.0.0.1", server->port(), "GET", "/debug/slowz");
  ASSERT_TRUE(slowz.ok());
  Result<JsonValue> parsed = ParseJson(slowz->body);
  ASSERT_TRUE(parsed.ok());
  std::set<int64_t> slow_ids;
  for (const JsonValue& record : parsed->Find("requests")->items) {
    slow_ids.insert(record.Find("id")->AsInt(-1));
  }
  ASSERT_FALSE(slow_ids.empty());
  // Stop joins the worker pool and closes the log: every completion hook
  // has run and every line is flushed by the time we read the file.
  server->Stop();

  std::ifstream log(log_path);
  ASSERT_TRUE(log.good());
  std::set<int64_t> logged_ids;
  std::string line;
  int64_t lines = 0;
  while (std::getline(log, line)) {
    if (line.empty()) continue;
    ++lines;
    Result<JsonValue> entry = ParseJson(line);
    ASSERT_TRUE(entry.ok()) << line;
    logged_ids.insert(entry->Find("id")->AsInt(-1));
    EXPECT_GE(entry->Find("total_us")->AsInt(-1), 0) << line;
    EXPECT_GT(entry->Find("status")->AsInt(-1), 0) << line;
    EXPECT_FALSE(entry->Find("method")->string_value.empty()) << line;
    EXPECT_NE(entry->Find("render_us"), nullptr) << line;
  }
  EXPECT_GE(lines, 7);  // 5 user + healthz + slowz
  for (int64_t id : slow_ids) {
    EXPECT_TRUE(logged_ids.count(id))
        << "slow-ring id " << id << " missing from the access log";
  }
  std::remove(log_path.c_str());
}

TEST_F(ModelServerTest, DisabledObsStillServesAndAssignsRequestIds) {
  obs::SetEnabled(false);
  auto server = StartServer(2);
  Result<HttpResponse> user =
      HttpFetch("127.0.0.1", server->port(), "GET", "/v1/user/0");
  ASSERT_TRUE(user.ok());
  EXPECT_EQ(user->status, 200);
  Result<HttpResponse> statusz =
      HttpFetch("127.0.0.1", server->port(), "GET", "/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(statusz->status, 200);
  // Staleness runs on a raw steady clock, so it survives the obs switch.
  EXPECT_NE(statusz->body.find("seconds_since_last_swap"), std::string::npos);
  obs::SetEnabled(true);
}

TEST_F(ModelServerTest, GracefulStopRefusesNewConnections) {
  auto server = StartServer(2);
  int port = server->port();
  Result<HttpResponse> before = HttpFetch("127.0.0.1", port, "GET", "/healthz");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->status, 200);
  server->Stop();
  EXPECT_FALSE(server->running());
  // Either the connect is refused or the (OS-buffered) connection yields
  // no response — both count as "not serving".
  Result<HttpResponse> after = HttpFetch("127.0.0.1", port, "GET", "/healthz");
  EXPECT_FALSE(after.ok());
  // Stop is idempotent; a second call must not hang or crash.
  server->Stop();
}

}  // namespace
}  // namespace serve
}  // namespace mlp
