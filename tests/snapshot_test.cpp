// Tests for the model snapshot / warm-start subsystem: byte-exact
// round-trips of the arena through src/io/model_snapshot, rejection of
// corrupt / foreign / version-skewed files, and the core warm-start
// contract — an interrupted fit resumed from its checkpoint reproduces
// the uninterrupted fit exactly, sequential and sharded.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "eval/methods.h"
#include "io/model_snapshot.h"
#include "synth/world_generator.h"

namespace mlp {
namespace io {
namespace {

synth::SyntheticWorld TestWorld(int num_users, uint64_t seed) {
  synth::WorldConfig config;
  config.num_users = num_users;
  config.seed = seed;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  EXPECT_TRUE(world.ok());
  return std::move(*world);
}

struct FitHarness {
  explicit FitHarness(const synth::SyntheticWorld& world) {
    input.gazetteer = world.gazetteer.get();
    input.graph = world.graph.get();
    input.distances = world.distances.get();
    referents = world.vocab->ReferentTable();
    input.venue_referents = &referents;
    input.observed_home.reserve(world.graph->num_users());
    for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
      input.observed_home.push_back(world.graph->user(u).registered_city);
    }
  }
  core::ModelInput input;
  std::vector<std::vector<geo::CityId>> referents;
};

void ExpectIdenticalResults(const core::MlpResult& a,
                            const core::MlpResult& b) {
  ASSERT_EQ(a.home.size(), b.home.size());
  EXPECT_EQ(a.home, b.home);
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (size_t u = 0; u < a.profiles.size(); ++u) {
    EXPECT_EQ(a.profiles[u].entries(), b.profiles[u].entries()) << "user " << u;
  }
  ASSERT_EQ(a.following.size(), b.following.size());
  for (size_t s = 0; s < a.following.size(); ++s) {
    EXPECT_EQ(a.following[s].x, b.following[s].x);
    EXPECT_EQ(a.following[s].y, b.following[s].y);
    EXPECT_EQ(a.following[s].noise_prob, b.following[s].noise_prob);
  }
  ASSERT_EQ(a.tweeting.size(), b.tweeting.size());
  for (size_t k = 0; k < a.tweeting.size(); ++k) {
    EXPECT_EQ(a.tweeting[k].z, b.tweeting[k].z);
    EXPECT_EQ(a.tweeting[k].noise_prob, b.tweeting[k].noise_prob);
  }
  EXPECT_EQ(a.home_change_per_sweep, b.home_change_per_sweep);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.beta, b.beta);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ------------------------------------------------------- format round-trip

TEST(ModelSnapshotTest, RoundTripIsBitIdentical) {
  synth::SyntheticWorld world = TestWorld(200, 42);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 2;
  config.sampling_iterations = 3;

  core::FitCheckpoint checkpoint;
  core::FitOptions opts;
  opts.checkpoint_out = &checkpoint;
  Result<core::MlpResult> result =
      core::MlpModel(config).Fit(harness.input, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(checkpoint.complete);

  ModelSnapshot snapshot =
      MakeModelSnapshot(harness.input, checkpoint, *result);
  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(SaveModelSnapshot(path, snapshot).ok());
  Result<ModelSnapshot> loaded = LoadModelSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The arena and every other double must survive bit-for-bit: vector
  // equality on doubles is exact, no tolerance.
  EXPECT_EQ(loaded->checkpoint.sampler.phi, checkpoint.sampler.phi);
  EXPECT_EQ(loaded->checkpoint.sampler.phi_total,
            checkpoint.sampler.phi_total);
  EXPECT_EQ(loaded->checkpoint.sampler.venue_counts,
            checkpoint.sampler.venue_counts);
  EXPECT_EQ(loaded->checkpoint.sampler.venue_counts_total,
            checkpoint.sampler.venue_counts_total);
  EXPECT_EQ(loaded->checkpoint.sampler.mu, checkpoint.sampler.mu);
  EXPECT_EQ(loaded->checkpoint.sampler.x_idx, checkpoint.sampler.x_idx);
  EXPECT_EQ(loaded->checkpoint.sampler.y_idx, checkpoint.sampler.y_idx);
  EXPECT_EQ(loaded->checkpoint.sampler.nu, checkpoint.sampler.nu);
  EXPECT_EQ(loaded->checkpoint.sampler.z_idx, checkpoint.sampler.z_idx);
  EXPECT_EQ(loaded->checkpoint.sampler.acc_phi, checkpoint.sampler.acc_phi);
  EXPECT_EQ(loaded->checkpoint.sampler.acc_x, checkpoint.sampler.acc_x);
  EXPECT_EQ(loaded->checkpoint.sampler.acc_mu, checkpoint.sampler.acc_mu);
  EXPECT_EQ(loaded->checkpoint.sampler.accumulated_samples,
            checkpoint.sampler.accumulated_samples);
  EXPECT_EQ(loaded->checkpoint.fingerprint, checkpoint.fingerprint);
  EXPECT_EQ(loaded->checkpoint.complete, checkpoint.complete);
  EXPECT_EQ(loaded->checkpoint.master_rng.state, checkpoint.master_rng.state);
  EXPECT_EQ(loaded->checkpoint.master_rng.inc, checkpoint.master_rng.inc);
  EXPECT_EQ(loaded->checkpoint.config.seed, config.seed);
  EXPECT_EQ(loaded->checkpoint.config.num_threads, config.num_threads);
  EXPECT_EQ(loaded->phi_offset, snapshot.phi_offset);
  EXPECT_EQ(loaded->candidates, snapshot.candidates);
  EXPECT_EQ(loaded->num_locations, snapshot.num_locations);
  EXPECT_EQ(loaded->num_venues, snapshot.num_venues);
  ExpectIdenticalResults(*result, loaded->result);
  std::remove(path.c_str());
}

// --------------------------------------------------- corruption rejection

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::SyntheticWorld world = TestWorld(120, 9);
    FitHarness harness(world);
    core::MlpConfig config;
    config.burn_in_iterations = 1;
    config.sampling_iterations = 2;
    core::FitCheckpoint checkpoint;
    core::FitOptions opts;
    opts.checkpoint_out = &checkpoint;
    Result<core::MlpResult> result =
        core::MlpModel(config).Fit(harness.input, opts);
    ASSERT_TRUE(result.ok());
    path_ = TempPath("corrupt.snap");
    ASSERT_TRUE(
        SaveModelSnapshot(
            path_, MakeModelSnapshot(harness.input, checkpoint, *result))
            .ok());
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), 200u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteBytes(const std::vector<char>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(CorruptionTest, FlippedPayloadByteFailsChecksum) {
  std::vector<char> corrupt = bytes_;
  corrupt[corrupt.size() / 2] ^= 0x5a;
  WriteBytes(corrupt);
  Result<ModelSnapshot> loaded = LoadModelSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(CorruptionTest, TruncatedFileRejected) {
  std::vector<char> truncated(bytes_.begin(),
                              bytes_.begin() + bytes_.size() / 3);
  WriteBytes(truncated);
  EXPECT_FALSE(LoadModelSnapshot(path_).ok());
  // Even losing a single trailing byte must fail.
  std::vector<char> short_one(bytes_.begin(), bytes_.end() - 1);
  WriteBytes(short_one);
  EXPECT_FALSE(LoadModelSnapshot(path_).ok());
}

TEST_F(CorruptionTest, DowngradedVersionByteFailsChecksum) {
  // The v2 checksum covers the header's version word: flipping a v2 file's
  // version down to 1 must read as corruption, never as an instruction to
  // reparse the payload under the v1 layout.
  std::vector<char> downgraded = bytes_;
  ASSERT_EQ(downgraded[8], 2);  // version u32 LSB
  downgraded[8] = 1;
  WriteBytes(downgraded);
  Result<ModelSnapshot> loaded = LoadModelSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(CorruptionTest, ForeignMagicRejected) {
  std::vector<char> foreign = bytes_;
  foreign[0] = 'X';
  WriteBytes(foreign);
  Result<ModelSnapshot> loaded = LoadModelSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(CorruptionTest, FutureVersionRejected) {
  std::vector<char> future = bytes_;
  future[8] = static_cast<char>(kModelSnapshotVersion + 1);  // version u32
  WriteBytes(future);
  Result<ModelSnapshot> loaded = LoadModelSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(ModelSnapshotTest, MissingFileIsNotFound) {
  Result<ModelSnapshot> loaded =
      LoadModelSnapshot(TempPath("does-not-exist.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

// ------------------------------------------------ warm-start determinism

void ExpectInterruptedEqualsUninterrupted(const core::MlpConfig& config,
                                          const FitHarness& harness,
                                          int stop_after) {
  Result<core::MlpResult> uninterrupted =
      core::MlpModel(config).Fit(harness.input);
  ASSERT_TRUE(uninterrupted.ok());

  core::FitCheckpoint checkpoint;
  core::FitOptions cold;
  cold.max_total_sweeps = stop_after;
  cold.checkpoint_out = &checkpoint;
  Result<core::MlpResult> partial =
      core::MlpModel(config).Fit(harness.input, cold);
  ASSERT_TRUE(partial.ok());
  ASSERT_FALSE(checkpoint.complete);

  // Round-trip the checkpoint through the on-disk format so the test
  // covers resume-from-file, not just resume-from-memory.
  const std::string path = TempPath("warmstart.snap");
  ASSERT_TRUE(
      SaveModelSnapshot(
          path, MakeModelSnapshot(harness.input, checkpoint, *partial))
          .ok());
  Result<ModelSnapshot> loaded = LoadModelSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  core::FitCheckpoint final_checkpoint;
  core::FitOptions warm;
  warm.warm_start = &loaded->checkpoint;
  warm.checkpoint_out = &final_checkpoint;
  Result<core::MlpResult> resumed =
      core::MlpModel(config).Fit(harness.input, warm);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(final_checkpoint.complete);
  ExpectIdenticalResults(*uninterrupted, *resumed);
}

TEST(WarmStartTest, SequentialResumeMatchesUninterrupted) {
  synth::SyntheticWorld world = TestWorld(250, 42);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 3;
  config.sampling_iterations = 4;
  // Stop mid-burn-in and mid-sampling.
  ExpectInterruptedEqualsUninterrupted(config, harness, 2);
  ExpectInterruptedEqualsUninterrupted(config, harness, 5);
}

TEST(WarmStartTest, GibbsEmResumeMatchesUninterrupted) {
  synth::SyntheticWorld world = TestWorld(200, 17);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 2;
  config.sampling_iterations = 2;
  config.gibbs_em_rounds = 1;
  // Stop inside round 0's sampling and inside round 1 (after the M-step).
  ExpectInterruptedEqualsUninterrupted(config, harness, 3);
  ExpectInterruptedEqualsUninterrupted(config, harness, 5);
}

TEST(WarmStartTest, ShardedResumeMatchesUninterrupted) {
  synth::SyntheticWorld world = TestWorld(250, 13);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 4;
  config.sampling_iterations = 3;
  config.num_threads = 3;
  ExpectInterruptedEqualsUninterrupted(config, harness, 2);
  // Deferred sync: the requested stop rolls forward to the next merge
  // barrier, which is exactly where the uninterrupted chain merges too.
  config.sync_every_sweeps = 2;
  ExpectInterruptedEqualsUninterrupted(config, harness, 3);
}

TEST(WarmStartTest, FingerprintMismatchIsRejected) {
  synth::SyntheticWorld world = TestWorld(150, 5);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 2;
  config.sampling_iterations = 2;

  core::FitCheckpoint checkpoint;
  core::FitOptions cold;
  cold.max_total_sweeps = 1;
  cold.checkpoint_out = &checkpoint;
  ASSERT_TRUE(core::MlpModel(config).Fit(harness.input, cold).ok());

  core::FitOptions warm;
  warm.warm_start = &checkpoint;
  // Different seed — a different chain; resuming must be refused.
  core::MlpConfig other_seed = config;
  other_seed.seed = config.seed + 1;
  Result<core::MlpResult> r1 =
      core::MlpModel(other_seed).Fit(harness.input, warm);
  ASSERT_FALSE(r1.ok());
  EXPECT_TRUE(r1.status().IsInvalidArgument());
  // Different thread count — a different (equally valid) chain; refused.
  core::MlpConfig other_threads = config;
  other_threads.num_threads = 2;
  Result<core::MlpResult> r2 =
      core::MlpModel(other_threads).Fit(harness.input, warm);
  ASSERT_FALSE(r2.ok());
  // Different data — masked homes change the priors; refused.
  core::ModelInput masked = harness.input;
  for (size_t u = 0; u < masked.observed_home.size() && u < 10; ++u) {
    masked.observed_home[u] = geo::kInvalidCity;
  }
  Result<core::MlpResult> r3 = core::MlpModel(config).Fit(masked, warm);
  ASSERT_FALSE(r3.ok());
}

TEST(WarmStartTest, CompletedCheckpointResumesToSameResult) {
  synth::SyntheticWorld world = TestWorld(150, 23);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 2;
  config.sampling_iterations = 2;

  core::FitCheckpoint checkpoint;
  core::FitOptions opts;
  opts.checkpoint_out = &checkpoint;
  Result<core::MlpResult> first =
      core::MlpModel(config).Fit(harness.input, opts);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(checkpoint.complete);

  // Warm-starting a finished fit runs zero sweeps and rebuilds the same
  // result — the serving reload path.
  core::FitOptions warm;
  warm.warm_start = &checkpoint;
  Result<core::MlpResult> reloaded =
      core::MlpModel(config).Fit(harness.input, warm);
  ASSERT_TRUE(reloaded.ok());
  ExpectIdenticalResults(*first, *reloaded);
}

// -------------------------------------------- pruning & v1 compatibility

// A pruned fit interrupted at a barrier and resumed from its snapshot must
// replay the uninterrupted pruned fit exactly — activation mask, cold
// streaks, compaction history and cost-resharding all round-trip.
TEST(WarmStartTest, PrunedResumeMatchesUninterrupted) {
  synth::SyntheticWorld world = TestWorld(300, 47);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 5;
  config.sampling_iterations = 3;
  config.prune_floor = 0.02;
  config.prune_patience = 2;
  // Stop before pruning can fire (sweep 1), right around the first
  // possible compaction (sweep 3) and mid-sampling (sweep 6).
  ExpectInterruptedEqualsUninterrupted(config, harness, 1);
  ExpectInterruptedEqualsUninterrupted(config, harness, 3);
  ExpectInterruptedEqualsUninterrupted(config, harness, 6);
  // Sharded: the resumed engine must re-derive the cost-based shards.
  config.num_threads = 3;
  ExpectInterruptedEqualsUninterrupted(config, harness, 3);
}

// v1→v2 compatibility (the format-evolution contract): a v1 snapshot —
// written by this build's legacy writer, byte-identical to PR-2 files —
// loads with an all-active mask and resumes bit-exactly with pruning off.
TEST(WarmStartTest, V1SnapshotLoadsFullyActiveAndResumesBitExactly) {
  synth::SyntheticWorld world = TestWorld(250, 53);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 3;
  config.sampling_iterations = 4;  // prune_floor stays 0 (--no_prune)

  Result<core::MlpResult> uninterrupted =
      core::MlpModel(config).Fit(harness.input);
  ASSERT_TRUE(uninterrupted.ok());

  core::FitCheckpoint checkpoint;
  core::FitOptions cold;
  cold.max_total_sweeps = 2;
  cold.checkpoint_out = &checkpoint;
  Result<core::MlpResult> partial =
      core::MlpModel(config).Fit(harness.input, cold);
  ASSERT_TRUE(partial.ok());
  ASSERT_FALSE(checkpoint.complete);
  // An unpruned checkpoint is v1-expressible: canonical empty mask.
  ASSERT_TRUE(checkpoint.activation.active.empty());

  const std::string path = TempPath("v1compat.snap");
  ASSERT_TRUE(
      SaveModelSnapshotV1(
          path, MakeModelSnapshot(harness.input, checkpoint, *partial))
          .ok());
  Result<ModelSnapshot> loaded = LoadModelSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  // The v1 reader leaves the activation fully active and pruning off.
  EXPECT_TRUE(loaded->checkpoint.activation.active.empty());
  EXPECT_EQ(loaded->checkpoint.activation.layout_version, 0u);
  EXPECT_EQ(loaded->checkpoint.config.prune_floor, 0.0);
  EXPECT_EQ(loaded->checkpoint.fingerprint, checkpoint.fingerprint);

  core::FitOptions warm;
  warm.warm_start = &loaded->checkpoint;
  Result<core::MlpResult> resumed =
      core::MlpModel(config).Fit(harness.input, warm);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdenticalResults(*uninterrupted, *resumed);
}

// The v1 writer must refuse state it cannot express.
TEST(WarmStartTest, V1WriterRejectsPrunedState) {
  synth::SyntheticWorld world = TestWorld(300, 59);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 5;
  config.sampling_iterations = 2;
  config.prune_floor = 0.02;
  config.prune_patience = 1;
  core::FitCheckpoint checkpoint;
  core::FitOptions opts;
  opts.checkpoint_out = &checkpoint;
  Result<core::MlpResult> result =
      core::MlpModel(config).Fit(harness.input, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(checkpoint.activation.layout_version, 0u)
      << "expected the aggressive floor to prune something";
  const std::string path = TempPath("v1reject.snap");
  Status saved = SaveModelSnapshotV1(
      path, MakeModelSnapshot(harness.input, checkpoint, *result));
  EXPECT_TRUE(saved.IsInvalidArgument()) << saved.ToString();
  // The v2 writer handles it, round-trips the activation, and the stored
  // candidate section is the COMPACTED layout the arena is indexed by.
  ModelSnapshot snapshot =
      MakeModelSnapshot(harness.input, checkpoint, *result);
  ASSERT_TRUE(SaveModelSnapshot(path, snapshot).ok());
  Result<ModelSnapshot> loaded = LoadModelSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());
  EXPECT_EQ(loaded->checkpoint.activation.active,
            checkpoint.activation.active);
  EXPECT_EQ(loaded->checkpoint.activation.cold_streak,
            checkpoint.activation.cold_streak);
  EXPECT_EQ(loaded->checkpoint.activation.layout_version,
            checkpoint.activation.layout_version);
  ASSERT_EQ(loaded->checkpoint.activation.history.size(),
            checkpoint.activation.history.size());
  EXPECT_EQ(static_cast<int64_t>(loaded->candidates.size()),
            loaded->phi_offset.back());
  EXPECT_EQ(loaded->candidates.size(),
            loaded->checkpoint.sampler.phi.size());
  EXPECT_LT(loaded->candidates.size(), checkpoint.activation.active.size());
}

// The MLP_WS lineup entry must be indistinguishable from MLP.
TEST(WarmStartTest, WarmResumeLineupVariantMatchesMlp) {
  synth::SyntheticWorld world = TestWorld(200, 31);
  FitHarness harness(world);
  core::MlpConfig config;
  config.burn_in_iterations = 2;
  config.sampling_iterations = 3;

  Result<eval::MethodOutput> direct =
      eval::MakeMlpMethod(config)(harness.input);
  ASSERT_TRUE(direct.ok());
  Result<eval::MethodOutput> warm =
      eval::MakeWarmResumeMlpMethod(config)(harness.input);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(direct->home, warm->home);
  ASSERT_EQ(direct->profiles.size(), warm->profiles.size());
  for (size_t u = 0; u < direct->profiles.size(); ++u) {
    EXPECT_EQ(direct->profiles[u].entries(), warm->profiles[u].entries());
  }
}

}  // namespace
}  // namespace io
}  // namespace mlp
