// Unit and property tests for src/stats: alias sampling, power-law
// fitting (the Fig-3a machinery), histograms, and descriptive statistics.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/alias_table.h"
#include "stats/descriptive.h"
#include "stats/discrete.h"
#include "stats/histogram.h"
#include "stats/power_law.h"

namespace mlp {
namespace stats {
namespace {

// ------------------------------------------------------------ alias table

TEST(AliasTableTest, EmptyAndZeroWeightsAreUnusable) {
  EXPECT_FALSE(AliasTable(std::vector<double>{}).ok());
  EXPECT_FALSE(AliasTable({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasTable().ok());
}

TEST(AliasTableTest, SingleBucketAlwaysSampled) {
  AliasTable table({5.0});
  Pcg32 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(&rng), 0);
}

TEST(AliasTableTest, NormalizedProbabilities) {
  AliasTable table({1.0, 3.0});
  EXPECT_NEAR(table.Probability(0), 0.25, 1e-12);
  EXPECT_NEAR(table.Probability(1), 0.75, 1e-12);
}

TEST(AliasTableTest, EmpiricalFrequenciesMatchWeights) {
  std::vector<double> weights = {2.0, 0.0, 5.0, 1.0, 2.0};
  AliasTable table(weights);
  Pcg32 rng(99);
  std::vector<int> counts(weights.size(), 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[table.Sample(&rng)]++;
  EXPECT_EQ(counts[1], 0);
  for (size_t i = 0; i < weights.size(); ++i) {
    double expected = weights[i] / 10.0;
    EXPECT_NEAR(counts[i] / static_cast<double>(n), expected, 0.01)
        << "bucket " << i;
  }
}

class AliasSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(AliasSizeTest, UniformWeightsGiveUniformDraws) {
  const int size = GetParam();
  AliasTable table(std::vector<double>(size, 1.0));
  Pcg32 rng(7);
  std::vector<int> counts(size, 0);
  const int n = 20000 * size;
  for (int i = 0; i < n; ++i) counts[table.Sample(&rng)]++;
  for (int i = 0; i < size; ++i) {
    EXPECT_NEAR(counts[i] * static_cast<double>(size) / n, 1.0, 0.08);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AliasSizeTest, ::testing::Values(2, 3, 17));

TEST(AliasTableTest, HighlySkewedWeights) {
  AliasTable table({1e-6, 1.0});
  Pcg32 rng(3);
  int zero_hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (table.Sample(&rng) == 0) ++zero_hits;
  }
  EXPECT_LT(zero_hits, 20);  // ≈ 1e-6 probability
}

// Chi-square goodness of fit over a million draws on weights spanning four
// orders of magnitude — the shape the engine's per-user proposal tables
// take after a few sweeps concentrate mass on one or two candidates. With
// df = 4 the 99.9th percentile is 18.47; the bound leaves slack so the
// test never flakes, while still catching any systematic bucket bias.
TEST(AliasTableTest, ChiSquareOnSkewedWeightsOverMillionDraws) {
  const std::vector<double> weights = {1000.0, 1.0, 10.0, 0.1, 500.0};
  AliasTable table(weights);
  ASSERT_TRUE(table.ok());
  Pcg32 rng(17);
  const int n = 1000000;
  std::vector<int64_t> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) counts[table.Sample(&rng)]++;
  double chi_square = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = table.Probability(static_cast<int>(i)) * n;
    ASSERT_GT(expected, 0.0);
    const double diff = counts[i] - expected;
    chi_square += diff * diff / expected;
  }
  EXPECT_LT(chi_square, 30.0) << "draws do not match the weight vector";
}

// The flat BuildInto form must construct the same buckets as the instance
// constructor (which delegates to it) — same prob/alias arrays means the
// same draw sequence from the same RNG stream. The parallel engine relies
// on this: tables it builds into flat arenas must sample identically to
// object-form tables built elsewhere from the same weights.
TEST(AliasTableTest, BuildIntoMatchesConstructorDrawForDraw) {
  const std::vector<double> weights = {2.0, 0.0, 5.0, 1.0, 0.25, 3.5};
  const int n = static_cast<int>(weights.size());
  AliasTable object_form(weights);
  ASSERT_TRUE(object_form.ok());

  std::vector<double> prob(n);
  std::vector<int32_t> alias(n);
  AliasBuildScratch scratch;
  const double total =
      AliasTable::BuildInto(weights.data(), n, prob.data(), alias.data(),
                            &scratch);
  EXPECT_DOUBLE_EQ(total, 11.75);

  Pcg32 rng_object(91);
  Pcg32 rng_flat(91);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_EQ(object_form.Sample(&rng_object),
              AliasTable::SampleFrom(prob.data(), alias.data(), n, &rng_flat))
        << "diverged at draw " << i;
  }
}

// -------------------------------------------------------------- power law

TEST(PowerLawTest, EvaluatesBetaDPowAlpha) {
  PowerLaw law{-0.55, 0.0045};
  EXPECT_NEAR(law(1.0), 0.0045, 1e-12);
  EXPECT_NEAR(law(100.0), 0.0045 * std::pow(100.0, -0.55), 1e-9);
}

TEST(PowerLawTest, ProbabilityClampedToUnit) {
  PowerLaw law{-1.0, 50.0};
  EXPECT_DOUBLE_EQ(law(1.0), 1.0);  // 50·1 clamps
  EXPECT_LT(law(1000.0), 1.0);
}

TEST(PowerLawTest, LogProbConsistentWithProb) {
  PowerLaw law{-0.55, 0.0045};
  EXPECT_NEAR(std::exp(law.LogProb(42.0)), law(42.0), 1e-12);
}

TEST(FitPowerLawTest, RecoversExactParameters) {
  PowerLaw truth{-0.55, 0.0045};
  std::vector<CurvePoint> points;
  for (double d = 1.0; d <= 2000.0; d *= 1.7) {
    points.push_back({d, truth(d), 1.0});
  }
  Result<PowerLaw> fit = FitPowerLaw(points);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, truth.alpha, 1e-9);
  EXPECT_NEAR(fit->beta, truth.beta, 1e-9);
}

class PowerLawRecoveryTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PowerLawRecoveryTest, RecoversUnderMultiplicativeNoise) {
  auto [alpha, beta] = GetParam();
  PowerLaw truth{alpha, beta};
  Pcg32 rng(11);
  std::vector<CurvePoint> points;
  for (double d = 1.0; d <= 3000.0; d *= 1.25) {
    double noise = std::exp(rng.Normal(0.0, 0.05));
    points.push_back({d, truth(d) * noise, 1.0});
  }
  Result<PowerLaw> fit = FitPowerLaw(points);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, alpha, 0.05);
  EXPECT_NEAR(fit->beta, beta, beta * 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    Parameters, PowerLawRecoveryTest,
    ::testing::Values(std::make_pair(-0.55, 0.0045),   // paper: Twitter
                      std::make_pair(-1.0, 0.0019),    // [5]: Facebook
                      std::make_pair(-1.5, 0.1),
                      std::make_pair(-0.2, 0.001)));

TEST(FitPowerLawTest, WeightsInfluenceFit) {
  // Two contradictory halves; upweighting one must pull the fit toward it.
  std::vector<CurvePoint> points = {
      {1.0, 0.1, 1000.0}, {10.0, 0.01, 1000.0},    // slope -1 heavy
      {1.0, 0.1, 1.0},    {10.0, 0.05, 1.0},       // slope ~-0.3 light
  };
  Result<PowerLaw> fit = FitPowerLaw(points);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, -1.0, 0.05);
}

TEST(FitPowerLawTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(FitPowerLaw({}).ok());
  EXPECT_FALSE(FitPowerLaw({{1.0, 0.5, 1.0}}).ok());
  // Same x twice: no slope.
  EXPECT_FALSE(FitPowerLaw({{1.0, 0.5, 1.0}, {1.0, 0.25, 1.0}}).ok());
  // Non-positive values are skipped, leaving too few points.
  EXPECT_FALSE(FitPowerLaw({{1.0, 0.5, 1.0}, {-2.0, 0.2, 1.0}}).ok());
  EXPECT_FALSE(FitPowerLaw({{1.0, 0.5, 1.0}, {2.0, 0.0, 1.0}}).ok());
}

TEST(RatioCurveTest, ComputesRatiosAndDropsSparseBuckets) {
  std::vector<double> edges = {5.0, 10.0, 0.0, 2.0};
  std::vector<double> pairs = {100.0, 50.0, 200.0, 2.0};
  std::vector<CurvePoint> curve = RatioCurve(edges, pairs, /*min_pairs=*/10.0);
  // Bucket 2 dropped (zero edges), bucket 3 dropped (pairs < 10).
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].x, 0.5);
  EXPECT_DOUBLE_EQ(curve[0].y, 0.05);
  EXPECT_DOUBLE_EQ(curve[1].y, 0.2);
  EXPECT_DOUBLE_EQ(curve[1].weight, 50.0);
}

TEST(RatioCurveTest, SizeMismatchUsesCommonPrefix) {
  std::vector<CurvePoint> curve =
      RatioCurve({1.0, 2.0, 3.0}, {10.0, 10.0}, 1.0);
  EXPECT_EQ(curve.size(), 2u);
}

// -------------------------------------------------------------- histogram

TEST(HistogramTest, AddAndBucketBoundaries) {
  Histogram h(1.0, 10);
  h.Add(0.0);
  h.Add(0.999);
  h.Add(1.0);
  h.Add(9.999);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(HistogramTest, OverflowAndNegativeClamp) {
  Histogram h(1.0, 5);
  h.Add(100.0);
  h.Add(-3.0);  // clamps into bucket 0
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(HistogramTest, WeightedAdds) {
  Histogram h(2.0, 4);
  h.Add(1.0, 3.5);
  h.Add(3.0, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 3.5);
  EXPECT_DOUBLE_EQ(h.count(1), 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(HistogramTest, BucketCenters) {
  Histogram h(10.0, 3);
  EXPECT_DOUBLE_EQ(h.BucketCenter(0), 5.0);
  EXPECT_DOUBLE_EQ(h.BucketCenter(2), 25.0);
}

TEST(HistogramTest, NormalizedSumsToOneIncludingOverflowMass) {
  Histogram h(1.0, 2);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(10.0);  // overflow
  std::vector<double> n = h.Normalized();
  EXPECT_NEAR(n[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(n[1], 1.0 / 3.0, 1e-12);
}

TEST(HistogramTest, ClearResets) {
  Histogram h(1.0, 2);
  h.Add(0.5);
  h.Clear();
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  EXPECT_DOUBLE_EQ(h.count(0), 0.0);
}

// ------------------------------------------------------------ descriptive

TEST(DescriptiveTest, MeanVarianceStdDev) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, EmptyAndSingletonEdgeCases) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(DescriptiveTest, QuantilesInterpolate) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.5), 4.0);  // clamped
}

TEST(DescriptiveTest, PearsonCorrelationSigns) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> up = {2, 4, 6, 8, 10};
  std::vector<double> down = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(xs, down), -1.0, 1e-12);
  std::vector<double> constant = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, constant), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, {1.0}), 0.0);  // size mismatch
}

TEST(DescriptiveTest, RSquaredPerfectAndMean) {
  std::vector<double> actual = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RSquared(actual, actual), 1.0);
  std::vector<double> mean_pred = {2.5, 2.5, 2.5, 2.5};
  EXPECT_DOUBLE_EQ(RSquared(actual, mean_pred), 0.0);
}

// ---------------------------------------------------------------- discrete

TEST(DiscreteTest, NormalizeInPlaceBasic) {
  std::vector<double> w = {1.0, 3.0};
  double sum = NormalizeInPlace(&w);
  EXPECT_DOUBLE_EQ(sum, 4.0);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  EXPECT_DOUBLE_EQ(w[1], 0.75);
}

TEST(DiscreteTest, NormalizeAllZerosBecomesUniform) {
  std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  NormalizeInPlace(&w);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(DiscreteTest, EntropyUniformIsLogN) {
  std::vector<double> u = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(Entropy(u), std::log(4.0), 1e-12);
  std::vector<double> pointmass = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(Entropy(pointmass), 0.0);
}

TEST(DiscreteTest, TopKOrdersDescendingWithTiesByIndex) {
  std::vector<double> w = {0.1, 0.5, 0.5, 0.3};
  std::vector<int> top = TopK(w, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);  // tie broken by lower index
  EXPECT_EQ(top[1], 2);
  EXPECT_EQ(top[2], 3);
}

TEST(DiscreteTest, TopKClampsK) {
  std::vector<double> w = {1.0, 2.0};
  EXPECT_EQ(TopK(w, 10).size(), 2u);
  EXPECT_TRUE(TopK(w, 0).empty());
  EXPECT_TRUE(TopK(w, -3).empty());
}

TEST(DiscreteTest, AboveThresholdSortedByWeight) {
  std::vector<double> w = {0.05, 0.6, 0.2, 0.15};
  std::vector<int> hits = AboveThreshold(w, 0.15);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 2);
  EXPECT_EQ(hits[2], 3);
}

TEST(SparseCountsTest, AddGetTotal) {
  SparseCounts counts;
  counts.Add(7, 2.0);
  counts.Add(3, 1.0);
  counts.Add(7, 1.0);
  EXPECT_DOUBLE_EQ(counts.Get(7), 3.0);
  EXPECT_DOUBLE_EQ(counts.Get(3), 1.0);
  EXPECT_DOUBLE_EQ(counts.Get(99), 0.0);
  EXPECT_DOUBLE_EQ(counts.total(), 4.0);
}

TEST(SparseCountsTest, DecrementToZeroAndClear) {
  SparseCounts counts;
  counts.Add(1, 2.0);
  counts.Add(1, -2.0);
  EXPECT_DOUBLE_EQ(counts.Get(1), 0.0);
  counts.Clear();
  EXPECT_DOUBLE_EQ(counts.total(), 0.0);
  EXPECT_TRUE(counts.entries().empty());
}

}  // namespace
}  // namespace stats
}  // namespace mlp
