// Streaming delta ingest (ISSUE 5 / ROADMAP "streaming updates"):
//   - an empty delta is a strict no-op (bit-identical snapshot),
//   - malformed deltas are rejected with clear errors (duplicate user
//     handle, unknown user id, unknown venue),
//   - ingest-then-save-then-load equals ingest-in-memory byte for byte,
//   - shards the delta never touched keep bit-identical counts and chain
//     state (the core locality guarantee of shard-scoped resampling),
//   - serve::ModelServer::SwapReadModel atomically publishes the
//     post-ingest view to a running server.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "io/model_snapshot.h"
#include "serve/model_server.h"
#include "serve/read_model.h"
#include "stream/delta_batch.h"
#include "stream/delta_ingest.h"
#include "synth/world_generator.h"

namespace mlp {
namespace stream {
namespace {

synth::SyntheticWorld TestWorld(int num_users, uint64_t seed) {
  synth::WorldConfig config;
  config.num_users = num_users;
  config.seed = seed;
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  EXPECT_TRUE(world.ok());
  return std::move(*world);
}

struct FitHarness {
  explicit FitHarness(const synth::SyntheticWorld& world) {
    input.gazetteer = world.gazetteer.get();
    input.graph = world.graph.get();
    input.distances = world.distances.get();
    referents = world.vocab->ReferentTable();
    input.venue_referents = &referents;
    input.observed_home.reserve(world.graph->num_users());
    for (graph::UserId u = 0; u < world.graph->num_users(); ++u) {
      input.observed_home.push_back(world.graph->user(u).registered_city);
    }
  }
  core::ModelInput input;
  std::vector<std::vector<geo::CityId>> referents;
};

core::MlpConfig SmallConfig(int threads = 1) {
  core::MlpConfig config;
  config.burn_in_iterations = 3;
  config.sampling_iterations = 3;
  config.num_threads = threads;
  return config;
}

// Fits the world to completion and hands back (checkpoint, result).
core::MlpResult FitBase(const core::ModelInput& input,
                        const core::MlpConfig& config,
                        core::FitCheckpoint* checkpoint) {
  core::FitOptions opts;
  opts.checkpoint_out = checkpoint;
  Result<core::MlpResult> result = core::MlpModel(config).Fit(input, opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(checkpoint->complete);
  return std::move(*result);
}

// A small, local delta: one labeled and one unlabeled user, a few edges
// stitching them to low-id existing users, two tweets at existing venues.
DeltaBatch SmallDelta(const graph::SocialGraph& base) {
  DeltaBatch delta;
  graph::UserRecord labeled;
  labeled.handle = "delta_labeled";
  labeled.registered_city = 3;
  graph::UserRecord unlabeled;
  unlabeled.handle = "delta_unlabeled";
  unlabeled.registered_city = geo::kInvalidCity;
  delta.users = {labeled, unlabeled};
  const graph::UserId first = base.num_users();
  delta.following = {{first, 0}, {first + 1, first}, {1, first + 1}};
  delta.tweeting = {{first, 2}, {first + 1, 5}};
  return delta;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

core::ModelInput MergedInput(const core::ModelInput& base,
                             const IngestOutput& out) {
  core::ModelInput merged = base;
  merged.graph = out.merged_graph.get();
  merged.observed_home = out.merged_observed_home;
  return merged;
}

void ExpectIdenticalResults(const core::MlpResult& a,
                            const core::MlpResult& b) {
  ASSERT_EQ(a.home.size(), b.home.size());
  EXPECT_EQ(a.home, b.home);
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (size_t u = 0; u < a.profiles.size(); ++u) {
    EXPECT_EQ(a.profiles[u].entries(), b.profiles[u].entries()) << "user " << u;
  }
  ASSERT_EQ(a.following.size(), b.following.size());
  for (size_t s = 0; s < a.following.size(); ++s) {
    EXPECT_EQ(a.following[s].x, b.following[s].x) << "edge " << s;
    EXPECT_EQ(a.following[s].y, b.following[s].y) << "edge " << s;
    EXPECT_EQ(a.following[s].noise_prob, b.following[s].noise_prob);
  }
  ASSERT_EQ(a.tweeting.size(), b.tweeting.size());
  for (size_t k = 0; k < a.tweeting.size(); ++k) {
    EXPECT_EQ(a.tweeting[k].z, b.tweeting[k].z) << "tweet " << k;
    EXPECT_EQ(a.tweeting[k].noise_prob, b.tweeting[k].noise_prob);
  }
}

// ------------------------------------------------------------- validation

TEST(DeltaBatchTest, DuplicateUserHandleRejected) {
  synth::SyntheticWorld world = TestWorld(60, 11);
  DeltaBatch delta;
  graph::UserRecord dup;
  dup.handle = world.graph->user(7).handle;  // already exists
  delta.users = {dup};
  Result<graph::SocialGraph> merged = MergeDelta(*world.graph, delta);
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("already exists"),
            std::string::npos)
      << merged.status().ToString();
  EXPECT_NE(merged.status().message().find(dup.handle), std::string::npos)
      << merged.status().ToString();

  // Two fresh users sharing a handle inside one batch are just as wrong.
  graph::UserRecord fresh;
  fresh.handle = "brand_new";
  delta.users = {fresh, fresh};
  EXPECT_FALSE(MergeDelta(*world.graph, delta).ok());
}

TEST(DeltaBatchTest, UnknownUserInEdgeRejected) {
  synth::SyntheticWorld world = TestWorld(60, 11);
  DeltaBatch delta;
  delta.following = {{world.graph->num_users() + 5, 0}};
  Result<graph::SocialGraph> merged = MergeDelta(*world.graph, delta);
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("references user"),
            std::string::npos)
      << merged.status().ToString();
}

TEST(DeltaBatchTest, UnknownVenueRejected) {
  synth::SyntheticWorld world = TestWorld(60, 11);
  DeltaBatch delta;
  delta.tweeting = {{0, world.graph->num_venues() + 3}};
  Result<graph::SocialGraph> merged = MergeDelta(*world.graph, delta);
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("unknown venue"),
            std::string::npos)
      << merged.status().ToString();
}

// ------------------------------------------------------------ no-op delta

TEST(DeltaIngestTest, EmptyDeltaIsBitIdenticalNoOp) {
  synth::SyntheticWorld world = TestWorld(200, 42);
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::MlpResult result =
      FitBase(harness.input, SmallConfig(), &checkpoint);

  Result<IngestOutput> ingested =
      ApplyDeltaBatch(harness.input, checkpoint, result, DeltaBatch());
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  EXPECT_EQ(ingested->report.touched_users, 0);
  EXPECT_EQ(ingested->report.shards_touched, 0);
  ExpectIdenticalResults(result, ingested->result);

  // The strongest form of "no-op": re-snapshotting the ingested model
  // produces the exact bytes of the base snapshot.
  const std::string base_path = TempPath("noop_base.snap");
  const std::string ingest_path = TempPath("noop_ingest.snap");
  ASSERT_TRUE(io::SaveModelSnapshot(
                  base_path,
                  io::MakeModelSnapshot(harness.input, checkpoint, result))
                  .ok());
  core::ModelInput merged_input = MergedInput(harness.input, *ingested);
  ASSERT_TRUE(io::SaveModelSnapshot(
                  ingest_path,
                  io::MakeModelSnapshot(merged_input, ingested->checkpoint,
                                        ingested->result))
                  .ok());
  EXPECT_EQ(FileBytes(base_path), FileBytes(ingest_path));
}

// ----------------------------------------------- save/load == in-memory

TEST(DeltaIngestTest, IngestOfLoadedSnapshotMatchesInMemory) {
  synth::SyntheticWorld world = TestWorld(200, 42);
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::MlpResult result =
      FitBase(harness.input, SmallConfig(), &checkpoint);
  DeltaBatch delta = SmallDelta(*world.graph);

  // In memory: ingest straight from the fit's checkpoint.
  Result<IngestOutput> direct =
      ApplyDeltaBatch(harness.input, checkpoint, result, delta);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  // Through disk: save the base model, load it back, ingest the loaded
  // checkpoint/result.
  const std::string base_path = TempPath("roundtrip_base.snap");
  ASSERT_TRUE(io::SaveModelSnapshot(
                  base_path,
                  io::MakeModelSnapshot(harness.input, checkpoint, result))
                  .ok());
  Result<io::ModelSnapshot> loaded = io::LoadModelSnapshot(base_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Result<IngestOutput> via_disk = ApplyDeltaBatch(
      harness.input, loaded->checkpoint, loaded->result, delta);
  ASSERT_TRUE(via_disk.ok()) << via_disk.status().ToString();

  ExpectIdenticalResults(direct->result, via_disk->result);

  // And the ingested models serialize to the same bytes — including after
  // an ingest-save-load-save loop (the snapshot format is stable under
  // re-serialization).
  core::ModelInput direct_input = MergedInput(harness.input, *direct);
  core::ModelInput disk_input = MergedInput(harness.input, *via_disk);
  const std::string direct_path = TempPath("roundtrip_direct.snap");
  const std::string disk_path = TempPath("roundtrip_disk.snap");
  ASSERT_TRUE(io::SaveModelSnapshot(
                  direct_path,
                  io::MakeModelSnapshot(direct_input, direct->checkpoint,
                                        direct->result))
                  .ok());
  ASSERT_TRUE(io::SaveModelSnapshot(
                  disk_path,
                  io::MakeModelSnapshot(disk_input, via_disk->checkpoint,
                                        via_disk->result))
                  .ok());
  EXPECT_EQ(FileBytes(direct_path), FileBytes(disk_path));

  Result<io::ModelSnapshot> reloaded = io::LoadModelSnapshot(direct_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const std::string resaved_path = TempPath("roundtrip_resaved.snap");
  ASSERT_TRUE(io::SaveModelSnapshot(
                  resaved_path,
                  io::MakeModelSnapshot(direct_input, reloaded->checkpoint,
                                        reloaded->result))
                  .ok());
  EXPECT_EQ(FileBytes(direct_path), FileBytes(resaved_path));
}

// ------------------------------------------- untouched-shard bit-identity

TEST(DeltaIngestTest, UntouchedShardsAreBitIdentical) {
  synth::SyntheticWorld world = TestWorld(400, 9);
  FitHarness harness(world);
  core::MlpConfig config = SmallConfig(/*threads=*/4);
  core::FitCheckpoint checkpoint;
  core::MlpResult result = FitBase(harness.input, config, &checkpoint);

  // One unlabeled user following user 0: the touched set is {new user,
  // user 0} — at most two of the four shards.
  DeltaBatch delta;
  graph::UserRecord record;
  record.handle = "lonely_delta_user";
  record.registered_city = geo::kInvalidCity;
  delta.users = {record};
  delta.following = {{world.graph->num_users(), 0}};

  Result<IngestOutput> ingested =
      ApplyDeltaBatch(harness.input, checkpoint, result, delta);
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  const core::DeltaReport& report = ingested->report;
  EXPECT_EQ(report.shards_total, 4);
  EXPECT_GE(report.shards_touched, 1);
  EXPECT_LE(report.shards_touched, 2);
  ASSERT_LT(report.shards_touched, report.shards_total);

  // Per-user arena slices line up via each snapshot's candidate layout.
  core::ModelInput merged_input = MergedInput(harness.input, *ingested);
  io::ModelSnapshot base_snap =
      io::MakeModelSnapshot(harness.input, checkpoint, result);
  io::ModelSnapshot new_snap = io::MakeModelSnapshot(
      merged_input, ingested->checkpoint, ingested->result);

  const int old_users = world.graph->num_users();
  int untouched = 0;
  for (graph::UserId u = 0; u < old_users; ++u) {
    if (report.user_resampled[u]) continue;
    ++untouched;
    const int64_t ob = base_snap.phi_offset[u], oe = base_snap.phi_offset[u + 1];
    const int64_t nb = new_snap.phi_offset[u], ne = new_snap.phi_offset[u + 1];
    ASSERT_EQ(oe - ob, ne - nb) << "user " << u;
    for (int64_t i = 0; i < oe - ob; ++i) {
      // Same candidate cities, bit-identical counts.
      ASSERT_EQ(base_snap.candidates[ob + i], new_snap.candidates[nb + i]);
      ASSERT_EQ(checkpoint.sampler.phi[ob + i],
                ingested->checkpoint.sampler.phi[nb + i])
          << "user " << u << " slot " << i;
    }
    EXPECT_EQ(checkpoint.sampler.phi_total[u],
              ingested->checkpoint.sampler.phi_total[u]);
    // Served rows carried verbatim.
    EXPECT_EQ(result.profiles[u].entries(),
              ingested->result.profiles[u].entries());
    EXPECT_EQ(result.home[u], ingested->result.home[u]);
  }
  // With ≤ 2 of 4 roughly balanced shards touched, at least half the base
  // population must have been left alone.
  EXPECT_GE(untouched, old_users / 2);

  // Chain state of never-resampled edges is untouched too.
  for (size_t s = 0; s < checkpoint.sampler.mu.size(); ++s) {
    if (report.following_resampled[s]) continue;
    EXPECT_EQ(checkpoint.sampler.mu[s], ingested->checkpoint.sampler.mu[s]);
    EXPECT_EQ(ingested->result.following[s].x, result.following[s].x);
    EXPECT_EQ(ingested->result.following[s].y, result.following[s].y);
  }
  for (size_t k = 0; k < checkpoint.sampler.nu.size(); ++k) {
    if (report.tweeting_resampled[k]) continue;
    EXPECT_EQ(checkpoint.sampler.nu[k], ingested->checkpoint.sampler.nu[k]);
    EXPECT_EQ(checkpoint.sampler.z_idx[k],
              ingested->checkpoint.sampler.z_idx[k]);
  }

  // The ingested universe advertises a new layout generation.
  EXPECT_EQ(ingested->checkpoint.activation.layout_version,
            checkpoint.activation.layout_version + 1);
}

// ------------------------------------------------------- chained ingests

TEST(DeltaIngestTest, SecondIngestStacksOnFirst) {
  synth::SyntheticWorld world = TestWorld(150, 5);
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::MlpResult result =
      FitBase(harness.input, SmallConfig(), &checkpoint);

  Result<IngestOutput> first = ApplyDeltaBatch(
      harness.input, checkpoint, result, SmallDelta(*world.graph));
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  core::ModelInput merged_input = MergedInput(harness.input, *first);
  DeltaBatch second_delta;
  graph::UserRecord another;
  another.handle = "second_wave";
  another.registered_city = 8;
  second_delta.users = {another};
  second_delta.following = {{merged_input.graph->num_users(), 2}};
  Result<IngestOutput> second = ApplyDeltaBatch(
      merged_input, first->checkpoint, first->result, second_delta);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->merged_graph->num_users(),
            world.graph->num_users() + 3);
  EXPECT_EQ(second->checkpoint.activation.layout_version,
            checkpoint.activation.layout_version + 2);
  EXPECT_EQ(static_cast<int>(second->result.home.size()),
            world.graph->num_users() + 3);
}

// --------------------------------------------------- serve-layer handoff

TEST(SwapReadModelTest, PublishesIngestedViewAtomically) {
  synth::SyntheticWorld world = TestWorld(150, 5);
  FitHarness harness(world);
  core::FitCheckpoint checkpoint;
  core::MlpResult result =
      FitBase(harness.input, SmallConfig(), &checkpoint);
  Result<IngestOutput> ingested = ApplyDeltaBatch(
      harness.input, checkpoint, result, SmallDelta(*world.graph));
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();

  io::ModelSnapshot base_snap =
      io::MakeModelSnapshot(harness.input, checkpoint, result);
  core::ModelInput merged_input = MergedInput(harness.input, *ingested);
  io::ModelSnapshot new_snap = io::MakeModelSnapshot(
      merged_input, ingested->checkpoint, ingested->result);

  Result<serve::ReadModel> base_model = serve::ReadModel::Build(
      base_snap, *world.graph, harness.input.gazetteer);
  ASSERT_TRUE(base_model.ok()) << base_model.status().ToString();
  Result<serve::ReadModel> new_model = serve::ReadModel::Build(
      new_snap, *ingested->merged_graph, harness.input.gazetteer);
  ASSERT_TRUE(new_model.ok()) << new_model.status().ToString();

  serve::ServeOptions options;
  serve::ModelServer server(std::move(*base_model), options);
  // Routing and rendering are exercised through Handle() — no sockets.
  const std::string new_user_target =
      "/v1/user/" + std::to_string(world.graph->num_users());
  serve::HttpRequest request;
  request.method = "GET";

  request.target = "/v1/user/0";
  EXPECT_EQ(server.Handle(request).status, 200);
  const std::string body_before = server.Handle(request).body;
  request.target = new_user_target;
  EXPECT_EQ(server.Handle(request).status, 404);  // not in the base world
  EXPECT_EQ(server.model_generation(), 1u);

  server.SwapReadModel(std::move(*new_model));

  EXPECT_EQ(server.model_generation(), 2u);
  EXPECT_EQ(server.model()->num_users(), world.graph->num_users() + 2);
  request.target = new_user_target;
  EXPECT_EQ(server.Handle(request).status, 200);  // the ingested user
  request.target = "/v1/user/0";
  serve::HttpResponse after = server.Handle(request);
  EXPECT_EQ(after.status, 200);
  // Generation-keyed cache: the pre-swap cached body cannot leak into the
  // post-swap view; the fresh body renders from the new model.
  EXPECT_EQ(after.body, std::string(server.model()->UserJson(0)));

  request.target = "/statsz";
  serve::HttpResponse stats = server.Handle(request);
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"model_generation\":\"2\""), std::string::npos)
      << stats.body;
}

}  // namespace
}  // namespace stream
}  // namespace mlp
