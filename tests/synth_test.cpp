// Tests for src/synth: the synthetic world generator's statistical
// calibration (paper Sec. 5 data statistics), ground-truth bookkeeping,
// the true venue model (Fig. 3b shape), and tweet-text roundtripping.

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/pair_distance.h"
#include "eval/cross_validation.h"
#include "graph/graph_stats.h"
#include "synth/tweet_text.h"
#include "synth/venue_model.h"
#include "synth/world_generator.h"
#include "text/venue_extractor.h"

namespace mlp {
namespace synth {
namespace {

WorldConfig SmallConfig(uint64_t seed = 42) {
  WorldConfig config;
  config.num_users = 1200;
  config.seed = seed;
  return config;
}

class WorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new SyntheticWorld(
        std::move(GenerateWorld(SmallConfig()).ValueOrDie()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static SyntheticWorld* world_;
};

SyntheticWorld* WorldTest::world_ = nullptr;

TEST_F(WorldTest, SizesAreConsistent) {
  const SyntheticWorld& w = *world_;
  EXPECT_EQ(w.graph->num_users(), 1200);
  EXPECT_EQ(static_cast<int>(w.truth.profiles.size()), 1200);
  EXPECT_EQ(static_cast<int>(w.truth.following.size()),
            w.graph->num_following());
  EXPECT_EQ(static_cast<int>(w.truth.tweeting.size()),
            w.graph->num_tweeting());
  EXPECT_TRUE(w.graph->finalized());
}

TEST_F(WorldTest, DegreeCalibrationMatchesPaper) {
  // Paper Sec. 5: 14.8 friends and 29.0 tweeted venues per user.
  graph::GraphStats stats = graph::ComputeGraphStats(*world_->graph);
  EXPECT_NEAR(stats.avg_friends_per_user, 14.8, 1.5);
  EXPECT_NEAR(stats.avg_venues_per_user, 29.0, 2.0);
}

TEST_F(WorldTest, LabeledFractionMatchesParser) {
  // ~10% of profile strings are unparseable noise.
  graph::GraphStats stats = graph::ComputeGraphStats(*world_->graph);
  EXPECT_NEAR(stats.labeled_fraction, 0.9, 0.04);
}

TEST_F(WorldTest, RegisteredCityMostlyEqualsTrueHome) {
  // wrong_label_fraction (default 5%) renders a wrong-but-parseable city;
  // the rest must roundtrip exactly.
  int labeled = 0, correct = 0;
  for (graph::UserId u = 0; u < world_->graph->num_users(); ++u) {
    geo::CityId registered = world_->graph->user(u).registered_city;
    if (registered == geo::kInvalidCity) continue;
    ++labeled;
    if (registered == world_->truth.profiles[u].home()) ++correct;
  }
  ASSERT_GT(labeled, 0);
  double fraction = static_cast<double>(correct) / labeled;
  EXPECT_NEAR(fraction, 1.0 - world_->config.wrong_label_fraction, 0.03);
}

TEST_F(WorldTest, TrueProfilesWellFormed) {
  for (const TrueProfile& p : world_->truth.profiles) {
    ASSERT_FALSE(p.locations.empty());
    ASSERT_EQ(p.locations.size(), p.weights.size());
    double total = 0.0;
    for (double w : p.weights) {
      EXPECT_GT(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Home carries the largest weight.
    for (size_t i = 1; i < p.weights.size(); ++i) {
      EXPECT_LE(p.weights[i], p.weights[0] + 1e-12);
    }
    // No duplicate locations.
    std::unordered_set<geo::CityId> unique(p.locations.begin(),
                                           p.locations.end());
    EXPECT_EQ(unique.size(), p.locations.size());
  }
}

TEST_F(WorldTest, MultiLocationFractionNearConfig) {
  int multi = 0;
  for (const TrueProfile& p : world_->truth.profiles) {
    if (p.IsMultiLocation()) ++multi;
  }
  double fraction = multi / 1200.0;
  EXPECT_NEAR(fraction, world_->config.multi_location_fraction, 0.06);
}

TEST_F(WorldTest, MultiLocationUsersAverageAboutTwoLocations) {
  // Paper Sec. 5.2: "On average, a user has 2 locations" (multi-loc subset).
  double total = 0.0;
  int multi = 0;
  for (const TrueProfile& p : world_->truth.profiles) {
    if (p.IsMultiLocation()) {
      total += static_cast<double>(p.locations.size());
      ++multi;
    }
  }
  ASSERT_GT(multi, 0);
  EXPECT_NEAR(total / multi, 2.2, 0.35);
}

TEST_F(WorldTest, FollowingNoiseFractionNearConfig) {
  int noisy = 0;
  for (const FollowingTruth& t : world_->truth.following) {
    if (t.noisy) ++noisy;
  }
  double fraction =
      noisy / static_cast<double>(world_->truth.following.size());
  EXPECT_NEAR(fraction, world_->config.following_noise_fraction, 0.03);
}

TEST_F(WorldTest, LocationBasedEdgesCarryValidAssignments) {
  for (size_t s = 0; s < world_->truth.following.size(); ++s) {
    const FollowingTruth& t = world_->truth.following[s];
    const graph::FollowingEdge& e =
        world_->graph->following(static_cast<graph::EdgeId>(s));
    if (t.noisy) {
      EXPECT_EQ(t.x, geo::kInvalidCity);
      EXPECT_EQ(t.y, geo::kInvalidCity);
      continue;
    }
    // x must be one of the follower's true locations; y one of the
    // friend's.
    const TrueProfile& pi = world_->truth.profiles[e.follower];
    const TrueProfile& pj = world_->truth.profiles[e.friend_user];
    EXPECT_NE(std::find(pi.locations.begin(), pi.locations.end(), t.x),
              pi.locations.end());
    EXPECT_NE(std::find(pj.locations.begin(), pj.locations.end(), t.y),
              pj.locations.end());
  }
}

TEST_F(WorldTest, TweetAssignmentsComeFromTrueProfiles) {
  for (size_t k = 0; k < world_->truth.tweeting.size(); ++k) {
    const TweetingTruth& t = world_->truth.tweeting[k];
    if (t.noisy) {
      EXPECT_EQ(t.z, geo::kInvalidCity);
      continue;
    }
    const graph::TweetingEdge& e =
        world_->graph->tweeting(static_cast<graph::EdgeId>(k));
    const TrueProfile& p = world_->truth.profiles[e.user];
    EXPECT_NE(std::find(p.locations.begin(), p.locations.end(), t.z),
              p.locations.end());
  }
}

TEST_F(WorldTest, NoSelfFollowsOrDuplicateEdges) {
  std::unordered_set<int64_t> seen;
  for (graph::EdgeId s = 0; s < world_->graph->num_following(); ++s) {
    const graph::FollowingEdge& e = world_->graph->following(s);
    EXPECT_NE(e.follower, e.friend_user);
    int64_t key = static_cast<int64_t>(e.follower) * 1000000 + e.friend_user;
    EXPECT_TRUE(seen.insert(key).second) << "duplicate edge";
  }
}

TEST_F(WorldTest, CelebritiesAttractNoisyFollows) {
  // In-degree of celebrities must dominate the average.
  std::vector<int> in_degree(world_->graph->num_users(), 0);
  for (graph::EdgeId s = 0; s < world_->graph->num_following(); ++s) {
    in_degree[world_->graph->following(s).friend_user]++;
  }
  double celeb_sum = 0.0, celeb_n = 0.0, other_sum = 0.0, other_n = 0.0;
  for (graph::UserId u = 0; u < world_->graph->num_users(); ++u) {
    if (world_->truth.is_celebrity[u]) {
      celeb_sum += in_degree[u];
      celeb_n += 1.0;
    } else {
      other_sum += in_degree[u];
      other_n += 1.0;
    }
  }
  ASSERT_GT(celeb_n, 0.0);
  EXPECT_GT(celeb_sum / celeb_n, 3.0 * other_sum / other_n);
}

TEST_F(WorldTest, NeighborLocationCoverageNearPaper) {
  // Paper Sec. 4.3: "about 92% users whose locations appear in their
  // relationships".
  auto referents = world_->vocab->ReferentTable();
  double coverage = graph::NeighborLocationCoverage(*world_->graph, referents);
  EXPECT_GT(coverage, 0.85);
}

TEST_F(WorldTest, FollowingProbabilityDecaysWithDistance) {
  // The generator must reproduce Fig. 3a's negative-slope power law.
  std::vector<geo::CityId> homes = eval::RegisteredHomes(*world_->graph);
  Result<stats::PowerLaw> fit = core::FitFollowingPowerLaw(
      *world_->graph, homes, *world_->distances);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->alpha, -0.15);
  EXPECT_GT(fit->alpha, -1.2);
  EXPECT_GT(fit->beta, 0.0);
}

TEST(WorldGeneratorTest, DeterministicGivenSeed) {
  SyntheticWorld a = std::move(GenerateWorld(SmallConfig(5)).ValueOrDie());
  SyntheticWorld b = std::move(GenerateWorld(SmallConfig(5)).ValueOrDie());
  ASSERT_EQ(a.graph->num_following(), b.graph->num_following());
  for (graph::EdgeId s = 0; s < a.graph->num_following(); ++s) {
    EXPECT_EQ(a.graph->following(s).follower, b.graph->following(s).follower);
    EXPECT_EQ(a.graph->following(s).friend_user,
              b.graph->following(s).friend_user);
  }
  ASSERT_EQ(a.truth.profiles.size(), b.truth.profiles.size());
  for (size_t u = 0; u < a.truth.profiles.size(); ++u) {
    EXPECT_EQ(a.truth.profiles[u].locations, b.truth.profiles[u].locations);
  }
}

TEST(WorldGeneratorTest, DifferentSeedsDiffer) {
  SyntheticWorld a = std::move(GenerateWorld(SmallConfig(1)).ValueOrDie());
  SyntheticWorld b = std::move(GenerateWorld(SmallConfig(2)).ValueOrDie());
  int same = 0;
  int n = std::min(a.graph->num_following(), b.graph->num_following());
  for (graph::EdgeId s = 0; s < n; ++s) {
    if (a.graph->following(s).follower == b.graph->following(s).follower &&
        a.graph->following(s).friend_user ==
            b.graph->following(s).friend_user) {
      ++same;
    }
  }
  EXPECT_LT(same, n / 10);
}

TEST(WorldGeneratorTest, RejectsBadConfigs) {
  WorldConfig config;
  config.num_users = 1;
  EXPECT_FALSE(GenerateWorld(config).ok());

  config = WorldConfig{};
  config.primary_weight = 0.0;
  EXPECT_FALSE(GenerateWorld(config).ok());

  config = WorldConfig{};
  config.local_mass = 0.9;  // mixture no longer sums to 1
  EXPECT_FALSE(GenerateWorld(config).ok());

  config = WorldConfig{};
  config.following_alpha = 0.3;
  EXPECT_FALSE(GenerateWorld(config).ok());

  config = WorldConfig{};
  config.max_locations = 0;
  EXPECT_FALSE(GenerateWorld(config).ok());
}

// ------------------------------------------------------------ venue model

class VenueModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    distances_ = std::make_unique<geo::CityDistanceMatrix>(gaz_, 1.0);
    model_ = std::make_unique<TrueVenueModel>(gaz_, vocab_, *distances_,
                                              VenueModelParams{});
  }

  double CityProbOfVenue(const char* city, const char* state,
                         const char* venue) {
    geo::CityId c = gaz_.Find(city, state);
    auto v = vocab_.Find(venue);
    return model_->CityDistribution(c)[*v];
  }

  geo::Gazetteer gaz_ = geo::Gazetteer::FromEmbedded();
  std::unique_ptr<geo::CityDistanceMatrix> distances_;
  text::VenueVocabulary vocab_ = text::VenueVocabulary::Build(gaz_);
  std::unique_ptr<TrueVenueModel> model_;
};

TEST_F(VenueModelTest, DistributionsNormalized) {
  for (geo::CityId c = 0; c < gaz_.size(); c += 29) {
    const std::vector<double>& psi = model_->CityDistribution(c);
    double total = 0.0;
    for (double p : psi) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(VenueModelTest, OwnCityNameDominatesLocally) {
  // Fig. 3b: users in Austin tweet "austin" much more than "hollywood".
  EXPECT_GT(CityProbOfVenue("Austin", "TX", "austin"),
            10.0 * CityProbOfVenue("Austin", "TX", "hollywood"));
  EXPECT_GT(CityProbOfVenue("Los Angeles", "CA", "hollywood"),
            10.0 * CityProbOfVenue("Los Angeles", "CA", "austin"));
}

TEST_F(VenueModelTest, TweetingProbabilitiesDifferAcrossLocations) {
  // Fig. 3b: "users in Los Angeles are more likely to tweet 'los angeles'
  // than those in Austin".
  EXPECT_GT(CityProbOfVenue("Los Angeles", "CA", "los angeles"),
            CityProbOfVenue("Austin", "TX", "los angeles"));
}

TEST_F(VenueModelTest, NearbyVenueBeatsFarawayVenueOfSimilarSize) {
  // Round Rock (17 mi from Austin) must beat a similar-size distant city.
  EXPECT_GT(CityProbOfVenue("Austin", "TX", "round rock"),
            CityProbOfVenue("Austin", "TX", "murfreesboro"));
}

TEST_F(VenueModelTest, FarButPopularVenueStillHasMass) {
  // Fig. 3b: probability is NOT monotonic in distance — far-but-popular
  // venues (New York seen from Austin) beat nearer small towns.
  EXPECT_GT(CityProbOfVenue("Austin", "TX", "new york"),
            CityProbOfVenue("Austin", "TX", "laramie"));
  EXPECT_GT(CityProbOfVenue("Austin", "TX", "new york"), 0.0);
}

TEST_F(VenueModelTest, GlobalPopularityNormalized) {
  const std::vector<double>& global = model_->GlobalPopularity();
  double total = 0.0;
  for (double p : global) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Big-city venues dominate small-town venues by orders of magnitude.
  auto ny = vocab_.Find("new york");
  auto laramie = vocab_.Find("laramie");
  EXPECT_GT(global[*ny], 100.0 * global[*laramie]);
  // The top venue must refer to New York (its own name or a landmark like
  // "manhattan", whose referent set adds Manhattan KS on top of NYC).
  int top = 0;
  for (int v = 1; v < vocab_.size(); ++v) {
    if (global[v] > global[top]) top = v;
  }
  geo::CityId nyc = gaz_.Find("New York", "NY");
  const auto& refs = vocab_.venue(top).referents;
  EXPECT_NE(std::find(refs.begin(), refs.end(), nyc), refs.end())
      << "top venue: " << vocab_.venue(top).name;
}

// ------------------------------------------------------------- tweet text

TEST(TweetTextTest, RenderMentionsVenueExactlyOnce) {
  TweetTextSynthesizer synth(3);
  geo::Gazetteer gaz = geo::Gazetteer::FromEmbedded();
  text::VenueVocabulary vocab = text::VenueVocabulary::Build(gaz);
  text::VenueExtractor extractor(&vocab);
  for (int i = 0; i < 200; ++i) {
    std::string tweet = synth.Render("los angeles");
    auto ids = extractor.ExtractIds(tweet);
    ASSERT_EQ(ids.size(), 1u) << tweet;
    EXPECT_EQ(vocab.venue(ids[0]).name, "los angeles") << tweet;
  }
}

TEST(TweetTextTest, TimelineRoundtripsThroughExtractor) {
  // End-to-end text pipeline: rendered tweets → tokenizer → extractor must
  // recover exactly the venue sequence of the user's tweeting edges.
  SyntheticWorld world = std::move(GenerateWorld(SmallConfig(9)).ValueOrDie());
  text::VenueExtractor extractor(world.vocab.get());
  TweetTextSynthesizer synth(17);
  int users_checked = 0;
  for (graph::UserId u = 0; u < world.graph->num_users() && users_checked < 25;
       ++u) {
    const auto& edges = world.graph->TweetEdges(u);
    if (edges.empty()) continue;
    ++users_checked;
    std::vector<std::string> tweets = synth.RenderTimeline(world, u);
    ASSERT_EQ(tweets.size(), edges.size());
    for (size_t t = 0; t < tweets.size(); ++t) {
      auto ids = extractor.ExtractIds(tweets[t]);
      ASSERT_EQ(ids.size(), 1u) << tweets[t];
      EXPECT_EQ(ids[0], world.graph->tweeting(edges[t]).venue) << tweets[t];
    }
  }
  EXPECT_EQ(users_checked, 25);
}

}  // namespace
}  // namespace synth
}  // namespace mlp
