// Unit tests for src/text: tokenizer, the [8]-style profile-location
// parser, venue vocabulary (with ambiguity), and the extractor.

#include <gtest/gtest.h>

#include "geo/gazetteer.h"
#include "text/profile_parser.h"
#include "text/tokenizer.h"
#include "text/venue_extractor.h"
#include "text/venue_vocab.h"

namespace mlp {
namespace text {
namespace {

// -------------------------------------------------------------- tokenizer

TEST(TokenizerTest, LowercasesAndSplits) {
  auto tokens = Tokenize("Hello World");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
}

TEST(TokenizerTest, PunctuationSeparates) {
  auto tokens = Tokenize("wow—austin,texas!is great");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[1], "austin");
  EXPECT_EQ(tokens[2], "texas");
}

TEST(TokenizerTest, ApostropheAndPeriodInsideTokenDropped) {
  auto tokens = Tokenize("don't visit St. Louis");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "dont");
  EXPECT_EQ(tokens[2], "st");
  EXPECT_EQ(tokens[3], "louis");
}

TEST(TokenizerTest, MentionsAndHashtagsKeepWordPart) {
  auto tokens = Tokenize("@carol check #austin");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "carol");
  EXPECT_EQ(tokens[2], "austin");
}

TEST(TokenizerTest, UrlsSkipped) {
  auto tokens = Tokenize("see https://example.com/austin now");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "see");
  EXPECT_EQ(tokens[1], "now");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n").empty());
  EXPECT_TRUE(Tokenize("!!! ... ???").empty());
}

TEST(TokenizerTest, DigitsAreTokens) {
  auto tokens = Tokenize("route 66 rocks");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], "66");
}

TEST(TokenizerTest, JoinTokens) {
  std::vector<std::string> tokens = {"los", "angeles", "rocks"};
  EXPECT_EQ(JoinTokens(tokens, 0, 2), "los angeles");
  EXPECT_EQ(JoinTokens(tokens, 2, 1), "rocks");
}

// --------------------------------------------------------- profile parser

class ProfileParserTest : public ::testing::Test {
 protected:
  geo::Gazetteer gaz_ = geo::Gazetteer::FromEmbedded();
};

TEST_F(ProfileParserTest, AcceptsCityCommaAbbreviation) {
  auto city = ParseRegisteredLocation("Los Angeles, CA", gaz_);
  ASSERT_TRUE(city.has_value());
  EXPECT_EQ(gaz_.FullName(*city), "Los Angeles, CA");
}

TEST_F(ProfileParserTest, AcceptsCityCommaFullStateName) {
  auto city = ParseRegisteredLocation("Austin, Texas", gaz_);
  ASSERT_TRUE(city.has_value());
  EXPECT_EQ(gaz_.FullName(*city), "Austin, TX");
}

TEST_F(ProfileParserTest, CaseAndSpacingInsensitive) {
  EXPECT_TRUE(ParseRegisteredLocation("austin , tx", gaz_).has_value());
  EXPECT_TRUE(ParseRegisteredLocation("  AUSTIN,TEXAS  ", gaz_).has_value());
}

TEST_F(ProfileParserTest, RejectsNonsensicalGeneralAndBlank) {
  // The paper: nonsensical ("my home"), general ("CA"), or blank.
  EXPECT_FALSE(ParseRegisteredLocation("my home", gaz_).has_value());
  EXPECT_FALSE(ParseRegisteredLocation("CA", gaz_).has_value());
  EXPECT_FALSE(ParseRegisteredLocation("", gaz_).has_value());
  EXPECT_FALSE(ParseRegisteredLocation("   ", gaz_).has_value());
  EXPECT_FALSE(ParseRegisteredLocation("earth", gaz_).has_value());
}

TEST_F(ProfileParserTest, RejectsUnknownCityOrState) {
  EXPECT_FALSE(ParseRegisteredLocation("Gotham, NY", gaz_).has_value());
  EXPECT_FALSE(ParseRegisteredLocation("Austin, XX", gaz_).has_value());
  EXPECT_FALSE(ParseRegisteredLocation("Austin, Europe", gaz_).has_value());
}

TEST_F(ProfileParserTest, RejectsMultiLocationStrings) {
  // "Augusta, GA/New London, CT" has two commas → free-form, unlabeled.
  EXPECT_FALSE(
      ParseRegisteredLocation("Augusta, GA/New London, CT", gaz_).has_value());
}

TEST_F(ProfileParserTest, StateDisambiguatesCityName) {
  auto nj = ParseRegisteredLocation("Princeton, NJ", gaz_);
  auto wv = ParseRegisteredLocation("Princeton, WV", gaz_);
  ASSERT_TRUE(nj.has_value());
  ASSERT_TRUE(wv.has_value());
  EXPECT_NE(*nj, *wv);
}

// ------------------------------------------------------------- vocabulary

class VenueVocabTest : public ::testing::Test {
 protected:
  geo::Gazetteer gaz_ = geo::Gazetteer::FromEmbedded();
  VenueVocabulary vocab_ = VenueVocabulary::Build(gaz_);
};

TEST_F(VenueVocabTest, ContainsEveryCityName) {
  for (geo::CityId c = 0; c < gaz_.size(); ++c) {
    VenueId v = vocab_.CityNameVenue(c);
    ASSERT_GE(v, 0) << gaz_.FullName(c);
    // That venue must list the city among its referents.
    const auto& refs = vocab_.venue(v).referents;
    EXPECT_NE(std::find(refs.begin(), refs.end(), c), refs.end());
    EXPECT_TRUE(vocab_.venue(v).is_city_name);
  }
}

TEST_F(VenueVocabTest, AmbiguousCityNameHasMultipleReferents) {
  auto princeton = vocab_.Find("princeton");
  ASSERT_TRUE(princeton.has_value());
  EXPECT_GE(vocab_.venue(*princeton).referents.size(), 2u);
}

TEST_F(VenueVocabTest, LandmarksResolveToCities) {
  auto hollywood = vocab_.Find("hollywood");
  ASSERT_TRUE(hollywood.has_value());
  // "hollywood" is both a Florida city and an LA landmark.
  const auto& refs = vocab_.venue(*hollywood).referents;
  EXPECT_GE(refs.size(), 2u);
  bool has_la = false, has_fl = false;
  for (geo::CityId c : refs) {
    if (gaz_.FullName(c) == "Los Angeles, CA") has_la = true;
    if (gaz_.FullName(c) == "Hollywood, FL") has_fl = true;
  }
  EXPECT_TRUE(has_la);
  EXPECT_TRUE(has_fl);
}

TEST_F(VenueVocabTest, BroadwayIsAmbiguousAcrossCities) {
  auto broadway = vocab_.Find("broadway");
  ASSERT_TRUE(broadway.has_value());
  EXPECT_GE(vocab_.venue(*broadway).referents.size(), 2u);  // NY + Nashville
}

TEST_F(VenueVocabTest, NormalizesPunctuatedCityNames) {
  // "St. Louis" must be findable through its tokenized form.
  auto st_louis = vocab_.Find("st louis");
  ASSERT_TRUE(st_louis.has_value());
  EXPECT_FALSE(vocab_.Find("st. louis").has_value() &&
               vocab_.Find("st. louis") != st_louis);
}

TEST_F(VenueVocabTest, MaxNameTokensCoversMultiWordNames) {
  EXPECT_GE(vocab_.max_name_tokens(), 3);  // "madison square garden"
}

TEST_F(VenueVocabTest, ReferentTableParallelsVocabulary) {
  auto table = vocab_.ReferentTable();
  ASSERT_EQ(static_cast<int>(table.size()), vocab_.size());
  for (int v = 0; v < vocab_.size(); ++v) {
    EXPECT_EQ(table[v], vocab_.venue(v).referents);
  }
}

TEST_F(VenueVocabTest, FindUnknownReturnsNullopt) {
  EXPECT_FALSE(vocab_.Find("narnia").has_value());
  EXPECT_FALSE(vocab_.Find("").has_value());
}

// --------------------------------------------------------------- extractor

class VenueExtractorTest : public ::testing::Test {
 protected:
  geo::Gazetteer gaz_ = geo::Gazetteer::FromEmbedded();
  VenueVocabulary vocab_ = VenueVocabulary::Build(gaz_);
  VenueExtractor extractor_{&vocab_};

  std::string VenueName(VenueId v) { return vocab_.venue(v).name; }
};

TEST_F(VenueExtractorTest, ExtractsSingleTokenVenue) {
  auto ids = extractor_.ExtractIds("good morning austin!");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(VenueName(ids[0]), "austin");
}

TEST_F(VenueExtractorTest, LongestMatchWins) {
  // "los angeles" must match as one venue, not "angeles" alone or none.
  auto ids = extractor_.ExtractIds("see you in Los Angeles tonight");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(VenueName(ids[0]), "los angeles");
}

TEST_F(VenueExtractorTest, ThreeTokenVenue) {
  auto ids = extractor_.ExtractIds("flying into Salt Lake City");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(VenueName(ids[0]), "salt lake city");
}

TEST_F(VenueExtractorTest, MultipleMentionsInOneTweet) {
  auto ids = extractor_.ExtractIds("from austin to houston and back");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(VenueName(ids[0]), "austin");
  EXPECT_EQ(VenueName(ids[1]), "houston");
}

TEST_F(VenueExtractorTest, RepeatedMentionsKeptAsSeparateRelationships) {
  auto ids = extractor_.ExtractIds("austin austin austin");
  EXPECT_EQ(ids.size(), 3u);
}

TEST_F(VenueExtractorTest, LandmarkExtraction) {
  auto ids = extractor_.ExtractIds("See Gaga in Hollywood.");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(VenueName(ids[0]), "hollywood");
}

TEST_F(VenueExtractorTest, PaperExampleTweet) {
  // Fig. 1: "Want to go to Honolulu for Spring vacation!"
  auto ids = extractor_.ExtractIds("Want to go to Honolulu for Spring vacation!");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(VenueName(ids[0]), "honolulu");
}

TEST_F(VenueExtractorTest, NoVenuesNoMatches) {
  EXPECT_TRUE(extractor_.ExtractIds("good morning!").empty());
  EXPECT_TRUE(extractor_.ExtractIds("").empty());
}

TEST_F(VenueExtractorTest, MentionPositionsReported) {
  auto mentions = extractor_.Extract("hello from new york city folks");
  ASSERT_FALSE(mentions.empty());
  EXPECT_EQ(mentions[0].token_begin, 2u);
  EXPECT_GE(mentions[0].token_count, 2u);
}

TEST_F(VenueExtractorTest, OverlapResolvedLeftToRight) {
  // "madison square garden" must not additionally emit "madison" (WI city).
  auto ids = extractor_.ExtractIds("at madison square garden tonight");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(VenueName(ids[0]), "madison square garden");
}

}  // namespace
}  // namespace text
}  // namespace mlp
