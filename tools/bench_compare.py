#!/usr/bin/env python3
"""CI bench-regression gate: diff fresh BENCH_*.json against committed
baselines and fail on regressions of the key metrics.

Usage:
  tools/bench_compare.py --baseline bench/baselines --fresh build [--update]

Every baseline file must have a fresh counterpart (a bench that stops
emitting its JSON is itself a regression). Metrics not listed in SPEC are
informational only: keys that appear in a fresh run but not in the
committed baseline (e.g. a bench that learned to emit new observability
metrics) are listed as "new metric (ignored)" and never fail the gate —
only SPEC'd keys gate, and only a SPEC'd key missing from either side is
an error.

Tolerances: ratio-shaped metrics (speedups, QPS ratios, touched fractions,
accuracy deltas) are machine-independent and carry the tight 25% gate.
Absolute wall-clock metrics (seconds, ms, QPS) also come from the committed
baseline — which was produced on a different machine class than the CI
runner — so they gate loosely (fail only when >2x worse) and exist to catch
order-of-magnitude bitrot, not percent-level drift. MLP_BENCH_GATE_SCALE
multiplies every tolerance (e.g. 2.0 on a known-slow runner); --update
rewrites the baselines from the fresh run instead of comparing.
"""

import argparse
import json
import os
import shutil
import sys

# Direction: "higher" = bigger is better (throughput, speedup),
# "lower" = smaller is better (latency, fractions).
RATIO = 0.25  # the 25% gate for machine-independent metrics
ABSOLUTE = 1.0  # loose gate for wall-clock metrics across machine classes

SPEC = {
    "BENCH_pruning.json": [
        # Pruning speedup and the accuracy cost of pruning.
        ("speedup", "higher", RATIO),
        ("active_fraction", "lower", RATIO),
        ("sweep_seconds_pruned", "lower", ABSOLUTE),
    ],
    "BENCH_parallel.json": [
        # Sweep throughput per thread count, the 8-thread scaling ratio,
        # and the scheduler-quality signal (per-sweep max/mean of worker
        # busy time — 1.0 is a perfect schedule; gated loosely because
        # oversubscribed runners add scheduling noise on top of it).
        ("threads_1_relationships_per_sec", "higher", ABSOLUTE),
        ("threads_8_relationships_per_sec", "higher", ABSOLUTE),
        ("threads_8_speedup", "higher", RATIO),
        ("threads_8_shard_kernel_max_over_mean", "lower", ABSOLUTE),
    ],
    "BENCH_serving.json": [
        # Serving p99 and throughput, plus the batch-vs-point ratio.
        ("threads_4_point_p99_ms", "lower", ABSOLUTE),
        ("threads_8_point_p99_ms", "lower", ABSOLUTE),
        ("threads_8_point_qps", "higher", ABSOLUTE),
        ("threads_8_batch_speedup", "higher", RATIO),
    ],
    "BENCH_streaming.json": [
        # Ingest latency, its speedup over a full refit, and the locality
        # and accuracy guarantees of shard-scoped resampling.
        ("ingest_seconds", "lower", ABSOLUTE),
        ("ingest_speedup", "higher", RATIO),
        ("touched_shard_fraction", "lower", RATIO),
        ("acc_delta_100mi_pct", "higher", None),  # absolute floor below
    ],
    "BENCH_scale.json": [
        # Million-user scale (ISSUE 8). CI runs the bench capped at 100k
        # users, so only the 10k/100k keys are SPEC'd; the committed
        # baseline additionally carries the 1M leg (streamed generation,
        # budgeted fit, out-of-core serve) as the scale artifact — those
        # keys show up as "dropped metric" in CI and never gate.
        ("10k_sweep_ms", "lower", ABSOLUTE),
        ("100k_sweep_ms", "lower", ABSOLUTE),
        ("100k_gen_ms", "lower", ABSOLUTE),
        ("100k_fit_peak_rss_mb", "lower", RATIO),
        ("100k_mmap_p99_us", "lower", ABSOLUTE),
        ("100k_mmap_serve_rss_mb", "lower", RATIO),
        ("mmap_over_mem_p99", "lower", None),  # absolute ceiling below
    ],
    "BENCH_live.json": [
        # Live ingest+serve daemon (ISSUE 10): query latency while the
        # in-process spool watcher applies delta batches, the interference
        # ratio against the idle server, and the apply/staleness costs.
        ("idle_p99_us", "lower", ABSOLUTE),
        ("live_p99_us", "lower", ABSOLUTE),
        ("p99_during_over_idle", "lower", ABSOLUTE),
        ("mean_apply_ms", "lower", ABSOLUTE),
        ("max_swap_staleness_ms", "lower", ABSOLUTE),
    ],
}

# Floors/ceilings checked directly on the fresh value, independent of the
# baseline: the streaming acceptance criteria from ISSUE 5 and the parallel
# scaling/accuracy criteria from ISSUE 7. An optional 4th element gates the
# bound on another fresh key — used to require real cores before asserting
# parallel speedup: a 1-core container runs 8 "threads" sequentially, so
# wall-clock speedup there measures only the alias-MH algorithmic win, and
# the 2.5x scaling floor (the committed-baseline machine class) would be
# meaningless. The unconditional 1.2x floor locks in that algorithmic win
# even on the smallest runner (a 1-core container measures ~1.4-2x, minus
# oversubscription noise).
FRESH_BOUNDS = {
    "BENCH_streaming.json": [
        ("ingest_speedup", ">=", 5.0),
        ("acc_delta_100mi_pct", ">=", -1.0),
        ("acc_delta_20mi_pct", ">=", -1.0),
    ],
    "BENCH_parallel.json": [
        ("threads_8_speedup", ">=", 1.2),
        ("threads_8_speedup", ">=", 2.5, ("hardware_threads", ">=", 8)),
        ("threads_2_acc_delta_100mi_pct", ">=", -1.0),
        ("threads_4_acc_delta_100mi_pct", ">=", -1.0),
        ("threads_8_acc_delta_100mi_pct", ">=", -1.0),
    ],
    # ISSUE 8 acceptance, checked at the CI scale cap (100k): out-of-core
    # serving must cost at most 2x the in-memory p99 on identical queries,
    # and the mmap server's resident set must stay a small fraction of the
    # snapshot it serves.
    "BENCH_scale.json": [
        ("mmap_over_mem_p99", "<=", 2.0),
        ("100k_serve_rss_over_snapshot_pct", "<=", 25.0),
    ],
    # ISSUE 10 acceptance: serving p99 while the daemon applies live
    # batches must stay within 2x of the idle p99 — but only where the
    # watcher thread has a core of its own to run on. On a 1-core
    # container the apply work timeshares with the query threads and the
    # ratio measures the scheduler, not the daemon (measured ~4.5x there),
    # so the bound is conditional like the parallel scaling floor. Swap
    # staleness (batch-mtime to model-swap) gates unconditionally: even
    # a starved box must publish within seconds, not minutes.
    "BENCH_live.json": [
        ("p99_during_over_idle", "<=", 2.0, ("hardware_threads", ">=", 4)),
        ("max_swap_staleness_ms", "<=", 15000.0),
    ],
}


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_metric(name, key, direction, tolerance, base, fresh, scale):
    """Returns (ok, line) for one metric."""
    if key not in base:
        return False, f"{name}:{key}: missing from baseline"
    if key not in fresh:
        return False, f"{name}:{key}: missing from fresh run"
    b, f = float(base[key]), float(fresh[key])
    if tolerance is None:
        return True, f"{name}:{key}: {b:.4g} -> {f:.4g} (bound-only)"
    tol = tolerance * scale
    if direction == "higher":
        # "At most tol worse": f >= b*(1-tol) while that bound is
        # meaningful; once tol >= 1 (the loose ABSOLUTE gate, possibly
        # scaled) it would degenerate to >= 0, so switch to the
        # multiplicative form "no worse than (1+tol)x".
        floor = b * (1.0 - tol) if tol < 1.0 else b / (1.0 + tol)
        ok = f >= floor
        change = (f - b) / b if b else 0.0
    else:
        ok = f <= b * (1.0 + tol)
        change = (b - f) / b if b else 0.0
    verdict = "ok" if ok else f"REGRESSION (>{tol:.0%} worse)"
    return ok, (f"{name}:{key}: {b:.4g} -> {f:.4g} "
                f"({change:+.1%} {'better' if change >= 0 else 'worse'}, "
                f"{verdict})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory with committed BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="directory with this run's BENCH_*.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from the fresh run")
    args = parser.parse_args()
    scale = float(os.environ.get("MLP_BENCH_GATE_SCALE", "1.0"))

    baseline_files = sorted(
        f for f in os.listdir(args.baseline)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baseline_files:
        print(f"no BENCH_*.json baselines under {args.baseline}",
              file=sys.stderr)
        return 1

    if args.update:
        for name in sorted(
                f for f in os.listdir(args.fresh)
                if f.startswith("BENCH_") and f.endswith(".json")):
            shutil.copyfile(os.path.join(args.fresh, name),
                            os.path.join(args.baseline, name))
            print(f"baseline updated: {name}")
        return 0

    failures = []
    # Coverage is two-way: every baseline needs a fresh counterpart AND
    # every fresh BENCH_*.json needs a committed baseline + SPEC entry —
    # a newly added bench must enter the gate in the same PR, not ride
    # along ungated.
    fresh_files = sorted(
        f for f in os.listdir(args.fresh)
        if f.startswith("BENCH_") and f.endswith(".json"))
    for name in fresh_files:
        if name not in baseline_files:
            failures.append(
                f"{name}: fresh bench JSON has no committed baseline — "
                f"add {os.path.join(args.baseline, name)} (--update) and a "
                "SPEC entry")
    for name in baseline_files:
        if not SPEC.get(name):
            failures.append(f"{name}: no SPEC metrics — baseline would be "
                            "compared against nothing")
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            failures.append(f"{name}: fresh run produced no JSON "
                            "(bench missing or crashed)")
            continue
        base, fresh = load(os.path.join(args.baseline, name)), load(fresh_path)
        # Keys the gate knows nothing about are reported but never fail:
        # a bench that starts emitting new metrics (e.g. the obs phase
        # breakdown) must not break CI until the baseline catches up.
        spec_keys = {key for key, _, _ in SPEC.get(name, [])}
        for key in sorted(fresh):
            if key not in base and key not in spec_keys:
                print(f"{name}:{key}: new metric (ignored by the gate)")
        for key in sorted(base):
            if key not in fresh and key not in spec_keys:
                print(f"{name}:{key}: dropped metric (ignored by the gate)")
        for key, direction, tolerance in SPEC.get(name, []):
            ok, line = compare_metric(name, key, direction, tolerance, base,
                                      fresh, scale)
            print(line)
            if not ok:
                failures.append(line)
        for entry in FRESH_BOUNDS.get(name, []):
            key, op, bound = entry[:3]
            condition = entry[3] if len(entry) > 3 else None
            if condition is not None:
                cond_key, cond_op, cond_bound = condition
                if cond_key not in fresh:
                    failures.append(
                        f"{name}:{cond_key}: missing from fresh run "
                        f"(condition for {key})")
                    continue
                cond_value = float(fresh[cond_key])
                cond_met = (cond_value >= cond_bound if cond_op == ">="
                            else cond_value <= cond_bound)
                if not cond_met:
                    print(f"{name}:{key}: bound {op} {bound} skipped "
                          f"({cond_key}={cond_value:.4g} not {cond_op} "
                          f"{cond_bound})")
                    continue
            if key not in fresh:
                failures.append(f"{name}:{key}: missing from fresh run")
                continue
            value = float(fresh[key])
            ok = value >= bound if op == ">=" else value <= bound
            line = f"{name}:{key}: {value:.4g} must be {op} {bound}"
            print(line + ("" if ok else "  FAILED"))
            if not ok:
                failures.append(line)

    if failures:
        print(f"\nbench-regression gate FAILED ({len(failures)}):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench-regression gate passed "
          f"({len(baseline_files)} files, tolerance scale {scale:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
