#!/usr/bin/env bash
# End-to-end CI smoke steps, factored out of .github/workflows/ci.yml so
# the same logic runs locally under ctest (`ctest -R smoke`) and in the
# workflow — the workflow keeps only build/matrix/artifact plumbing.
#
# Usage:
#   tools/ci_smoke.sh fit_ingest    MLPCTL WORKDIR
#   tools/ci_smoke.sh scale_serve   MLPCTL WORKDIR
#   tools/ci_smoke.sh live_pipeline MLPCTL WORKDIR
#   tools/ci_smoke.sh bench_micro   BENCH_MICRO_BINARY
#   tools/ci_smoke.sh perf_bench    BUILDDIR
#
# World sizes are small (bitrot gates, not perf runs) and overridable via
# MLP_SMOKE_* so a beefier machine can scale them up.
set -euo pipefail

step="${1:?usage: ci_smoke.sh <step> <binary-or-builddir> [workdir]}"

log() { printf '== %s\n' "$*"; }

# Fit a small model end to end, stream a delta into it, and publish the
# snapshot — every run leaves a loadable artifact of the current on-disk
# format, exercised through the offline ingest path too.
fit_ingest() {
  local mlpctl="${1:?mlpctl path}" work="${2:?workdir}"
  rm -rf "$work" && mkdir -p "$work"
  local users="${MLP_SMOKE_FIT_USERS:-800}"

  "$mlpctl" generate --users "$users" --seed 7 --out "$work/data"
  "$mlpctl" fit --data "$work/data" --save "$work/model.snap" \
    --burn 4 --sampling 4 --threads 4 --profile \
    --trace "$work/trace.json" | tee "$work/fit.log"
  # ISSUE 7 acceptance: the parallel engine must not idle at the barrier.
  # Derived barrier time is only meaningful when the 4 workers have real
  # cores — oversubscribed machines count descheduled time as "waiting" —
  # so the assertion requires >= 4 hardware threads.
  local barrier_pct
  barrier_pct=$(awk '/^barrier wait/ { gsub("%", "", $NF); print $NF }' \
    "$work/fit.log")
  log "barrier wait share: ${barrier_pct}%"
  if [ "$(nproc)" -ge 4 ]; then
    awk -v p="$barrier_pct" 'BEGIN { if (p == "" || p + 0 >= 25.0) exit 1 }' \
      || { log "barrier wait ${barrier_pct}% >= 25% of sweep time"; exit 1; }
  else
    log "skipping barrier assertion: $(nproc) hardware threads (< 4)"
  fi
  "$mlpctl" eval --data "$work/data" --load "$work/model.snap"

  mkdir -p "$work/delta"
  printf 'handle,profile_location,registered_city\nsmoke_new_a,"Austin, TX",3\nsmoke_new_b,,-1\n' \
    > "$work/delta/users.csv"
  printf 'follower,friend\n%s,5\n%s,%s\n10,%s\n' \
    "$users" "$((users + 1))" "$users" "$((users + 1))" \
    > "$work/delta/following.csv"
  printf 'user,venue\n%s,3\n%s,7\n' "$users" "$((users + 1))" \
    > "$work/delta/tweeting.csv"
  "$mlpctl" ingest --data "$work/data" --load "$work/model.snap" \
    --delta "$work/delta" --save "$work/model2.snap" \
    --save-data "$work/data2"
  "$mlpctl" eval --data "$work/data2" --load "$work/model2.snap"
  log "fit_ingest OK"
}

# ISSUE 8 out-of-core pipeline: stream-generate a world, fit it under a
# memory budget, pack the snapshot with the serve section, and self-check
# the mmap-backed server — all through the CLI.
scale_serve() {
  local mlpctl="${1:?mlpctl path}" work="${2:?workdir}"
  rm -rf "$work" && mkdir -p "$work"
  local users="${MLP_SMOKE_SCALE_USERS:-2000}"

  "$mlpctl" genworld --users "$users" --seed 11 --stream --out "$work/data"
  "$mlpctl" fit --data "$work/data" --save "$work/model.snap" \
    --burn 3 --sampling 2 --threads 2 --mem_budget_mb 512 --profile
  "$mlpctl" pack --data "$work/data" --load "$work/model.snap"
  "$mlpctl" serve --load "$work/model.snap" --mmap --selfcheck
  log "scale_serve OK"
}

# ISSUE 10 live ingest+serve daemon: start `serve --spool`, drop three
# delta batches (one deliberately malformed) while a query hammer runs,
# and assert the generation advanced twice, the malformed batch was
# quarantined with a receipt, zero non-2xx responses landed, the drain
# checkpointed, and the access log covers the whole run.
live_pipeline() {
  local mlpctl="${1:?mlpctl path}" work="${2:?workdir}"
  rm -rf "$work" && mkdir -p "$work/spool"
  local users="${MLP_SMOKE_LIVE_USERS:-400}"

  "$mlpctl" generate --users "$users" --seed 19 --out "$work/data"
  "$mlpctl" fit --data "$work/data" --save "$work/model.snap" \
    --burn 2 --sampling 2 --threads 2

  # Fail-fast satellite: a nonexistent spool dir must abort startup.
  if "$mlpctl" serve --data "$work/data" --load "$work/model.snap" \
      --port 0 --spool "$work/no-such-spool" > "$work/badspool.log" 2>&1; then
    log "serve accepted a nonexistent spool dir"; exit 1
  fi
  grep -q "live ingest failed" "$work/badspool.log" \
    || { log "missing fail-fast diagnostic"; cat "$work/badspool.log"; exit 1; }

  "$mlpctl" serve --data "$work/data" --load "$work/model.snap" --port 0 \
    --spool "$work/spool" --spool_poll_ms 50 --save "$work/final.snap" \
    --access_log="$work/access.log" > "$work/serve.log" 2>&1 &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(grep -oE 'http://127\.0\.0\.1:[0-9]+' "$work/serve.log" \
      | head -n1 | grep -oE '[0-9]+$' || true)
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { log "server never reported its port"; cat "$work/serve.log"; exit 1; }
  log "live server on port $port (pid $serve_pid)"

  # Query hammer: loop bounded probes until told to stop, so the 2xx
  # assertion spans every swap no matter how long the applies take.
  (
    while [ ! -f "$work/hammer.stop" ]; do
      if ! "$mlpctl" probe --port "$port" --target /v1/user/0 \
          --count 200 --interval_ms 2 >> "$work/hammer.log" 2>&1; then
        echo fail >> "$work/hammer.failures"
      fi
    done
  ) &
  local hammer_pid=$!

  # Three batches through the rename-in protocol; batch-002 is malformed
  # (non-numeric registered_city) and must quarantine without a swap, so
  # batch-003's user ids follow batch-001's directly.
  spool_batch() {  # name first_user_id malformed?
    local name="$1" first="$2" malformed="${3:-}"
    mkdir -p "$work/spool/tmp.$name"
    if [ -n "$malformed" ]; then
      printf 'handle,profile_location,registered_city\nbad_user,,notanumber\n' \
        > "$work/spool/tmp.$name/users.csv"
    else
      printf 'handle,profile_location,registered_city\nlive_%s_a,"Austin, TX",3\nlive_%s_b,,-1\n' \
        "$name" "$name" > "$work/spool/tmp.$name/users.csv"
      printf 'follower,friend\n%s,5\n%s,%s\n10,%s\n' \
        "$first" "$((first + 1))" "$first" "$((first + 1))" \
        > "$work/spool/tmp.$name/following.csv"
      printf 'user,venue\n%s,3\n%s,7\n' "$first" "$((first + 1))" \
        > "$work/spool/tmp.$name/tweeting.csv"
    fi
    mv "$work/spool/tmp.$name" "$work/spool/$name"
  }
  spool_batch batch-001 "$users"
  spool_batch batch-002 0 malformed
  spool_batch batch-003 "$((users + 2))"

  # Wait for two applies + one quarantine to land (spool moves are the
  # post-swap commit markers).
  local ok=""
  for _ in $(seq 1 600); do
    if [ -d "$work/spool/done/batch-001" ] \
        && [ -d "$work/spool/done/batch-003" ] \
        && [ -f "$work/spool/failed/batch-002/receipt.json" ]; then
      ok=1; break
    fi
    sleep 0.1
  done
  [ -n "$ok" ] || { log "batches never finished"; ls -R "$work/spool"; cat "$work/serve.log"; exit 1; }

  # Generation advanced twice (1 -> 3) and the daemon's counters agree.
  "$mlpctl" probe --port "$port" --target /statsz --out "$work/statsz.json"
  grep -q '"model_generation":"3"' "$work/statsz.json" \
    || { log "generation did not reach 3"; cat "$work/statsz.json"; exit 1; }
  grep -q '"live_batches_applied":"2"' "$work/statsz.json" \
    || { log "expected 2 applied batches"; cat "$work/statsz.json"; exit 1; }
  grep -q '"live_batches_failed":"1"' "$work/statsz.json" \
    || { log "expected 1 quarantined batch"; cat "$work/statsz.json"; exit 1; }
  grep -q '"error"' "$work/spool/failed/batch-002/receipt.json" \
    || { log "receipt lacks an error"; exit 1; }
  # The new users serve (both swaps are live).
  "$mlpctl" probe --port "$port" --target "/v1/user/$users" --count 1
  "$mlpctl" probe --port "$port" --target "/v1/user/$((users + 3))" --count 1

  # Stop the hammer: every bounded probe must have exited 2xx-clean.
  touch "$work/hammer.stop"
  wait "$hammer_pid"
  if [ -f "$work/hammer.failures" ]; then
    log "hammer saw non-2xx responses"; tail "$work/hammer.log"; exit 1
  fi
  local loops
  loops=$(grep -c 'all 2xx' "$work/hammer.log" || true)
  [ "${loops:-0}" -ge 1 ] || { log "hammer never completed a pass"; exit 1; }

  # Graceful drain: SIGTERM finishes in-flight work, checkpoints, exits 0.
  kill -TERM "$serve_pid"
  wait "$serve_pid" || { log "serve exited nonzero on SIGTERM"; cat "$work/serve.log"; exit 1; }
  [ -s "$work/final.snap" ] || { log "drain checkpoint missing"; exit 1; }
  grep -q 'live ingest: 2 batches applied, 1 quarantined' "$work/serve.log" \
    || { log "drain summary mismatch"; cat "$work/serve.log"; exit 1; }

  # Access log covers the whole run: at least every hammer request logged.
  local expect_lines=$((loops * 200)) got_lines
  got_lines=$(wc -l < "$work/access.log")
  [ "$got_lines" -ge "$expect_lines" ] \
    || { log "access log too short: $got_lines < $expect_lines"; exit 1; }
  log "live_pipeline OK: $loops hammer passes, $got_lines access-log lines"
}

# Prove the google-benchmark micro suite still builds and executes; its
# main() also runs the obs overhead guards (fit-sweep + per-request trace).
bench_micro() {
  local bench="${1:?bench_micro path}"
  # Bare-double min_time parses on every google-benchmark vintage; the
  # "0.01s" suffix form is rejected before 1.8.
  "$bench" --benchmark_filter=BM_Haversine --benchmark_min_time=0.01
  log "bench_micro OK"
}

# Machine-readable perf trajectory, tracked PR-over-PR. Small worlds —
# these runs gate bitrot and archive the numbers, not absolute perf.
perf_bench() {
  local build="${1:?build dir}"
  MLP_BENCH_PRUNE_USERS="${MLP_BENCH_PRUNE_USERS:-2000}" \
    MLP_BENCH_JSON_DIR="$build" "$build/bench_candidate_pruning"
  MLP_BENCH_SCALING_USERS="${MLP_BENCH_SCALING_USERS:-10000}" \
    MLP_BENCH_JSON_DIR="$build" "$build/bench_parallel_scaling"
  MLP_BENCH_SERVE_USERS="${MLP_BENCH_SERVE_USERS:-600}" \
    MLP_BENCH_JSON_DIR="$build" "$build/bench_serving_latency"
  MLP_BENCH_STREAM_USERS="${MLP_BENCH_STREAM_USERS:-2000}" \
    MLP_BENCH_JSON_DIR="$build" "$build/bench_streaming_ingest"
  MLP_BENCH_LIVE_USERS="${MLP_BENCH_LIVE_USERS:-1200}" \
    MLP_BENCH_JSON_DIR="$build" "$build/bench_live_ingest"
  # ISSUE 8 scale sweep, capped at the 100k leg on CI runners; the
  # committed baseline carries the full 1M artifact.
  MLP_SCALE_MAX_USERS="${MLP_SCALE_MAX_USERS:-100000}" \
    MLP_BENCH_JSON_DIR="$build" "$build/bench_scale"
  log "perf_bench OK"
}

case "$step" in
  fit_ingest)    fit_ingest "${2:?}" "${3:?}" ;;
  scale_serve)   scale_serve "${2:?}" "${3:?}" ;;
  live_pipeline) live_pipeline "${2:?}" "${3:?}" ;;
  bench_micro)   bench_micro "${2:?}" ;;
  perf_bench)    perf_bench "${2:?}" ;;
  *) echo "unknown step '$step'" >&2; exit 2 ;;
esac
