// mlpctl — command-line front end for the library.
//
//   mlpctl generate --users 4000 --seed 42 --out DIR
//       Generate a synthetic Twitter world and save it (with ground truth)
//       as CSV under DIR.
//   mlpctl genworld --users N --out DIR [--stream] [--chunk N]
//                   [--avg_friends F] [--avg_venues F]
//       The scale-test generator: same world model with the degree knobs
//       exposed, and --stream writes the dataset CSVs incrementally
//       (O(chunk) memory) so million-user worlds generate without ever
//       materializing the full graph.
//   mlpctl pack --data DIR --load MODEL.snap [--top_k T]
//       Append the mmap-able serve section (pre-rendered responses +
//       offset tables) to a fitted snapshot, enabling serve --mmap.
//   mlpctl stats --data DIR
//       Print dataset statistics for a saved world.
//   mlpctl eval --data DIR [--folds 5] [--method MLP] [--warm]
//       K-fold home-prediction evaluation of one method (BaseU, BaseC,
//       MLP_U, MLP_C, MLP, or MLP_WS with --warm) or of the full Table-2
//       lineup (--method all).
//   mlpctl eval --data DIR --load MODEL.snap
//       Serving-style evaluation of an already-fitted model snapshot: no
//       refit, scores the stored home estimates against the dataset.
//   mlpctl fit --data DIR --save MODEL.snap [--max-sweeps K]
//              [--prune_floor F] [--prune_patience K] [--no_prune]
//              [--profile] [--trace FILE]
//       Fit MLP on the full dataset (every registered home observed) and
//       persist the model — sufficient statistics, chain state, RNG
//       streams, candidate activation and result — as a versioned
//       snapshot. With --max-sweeps the fit checkpoints early and the
//       snapshot is resumable. --prune_floor enables adaptive sweep-time
//       candidate pruning (see src/core/README.md). --profile prints an
//       end-of-fit per-phase wall-clock table (replica refresh / shard
//       kernel / barrier wait / delta merge / ...); --trace FILE writes
//       every recorded span as Chrome trace_event JSON, viewable in
//       chrome://tracing or Perfetto (see src/obs/README.md).
//   mlpctl resume --data DIR --load MODEL.snap [--save MODEL2.snap]
//       Continue an interrupted fit from a snapshot to completion. The
//       combined fit+resume reproduces an uninterrupted fit exactly.
//       --prune_floor / --prune_patience / --no_prune override the stored
//       pruning policy (and only that) for the remaining sweeps, so
//       warm-started and pruned fits compose.
//   mlpctl ingest --data DIR --load MODEL.snap --delta DIR2 --save M2.snap
//                 [--resample-burn N] [--resample-sampling N]
//       Streaming delta ingest (src/stream/): absorb a batch of new
//       users/relationships/tweets (CSV files under DIR2, same formats as
//       a saved dataset) into a fitted snapshot WITHOUT a full refit —
//       candidate rows are migrated, only the delta-touched shards are
//       resampled from the warm chain state, and the updated model (bound
//       to the merged world, also written as merged CSVs under
//       --save-data when given) is saved as an ordinary v2 snapshot.
//   mlpctl serve --data DIR --load MODEL.snap [--port N] [--threads K]
//                [--cache_mb M] [--top_k T] [--selfcheck]
//                [--spool DIR [--spool_poll_ms N]
//                 [--checkpoint_every K] [--save MODEL2.snap]]
//                — or, out-of-core over a packed snapshot:
//   mlpctl serve --load MODEL.snap --mmap [--port N] [--threads K]
//                [--selfcheck]
//       Online query server over a fitted snapshot (src/serve/): GET
//       /v1/user/{id}, GET /v1/edge/{src}/{dst}, POST /v1/batch, /healthz,
//       /statsz, /metricsz (Prometheus text). SIGINT/SIGTERM shut down
//       gracefully (drain in-flight requests). --selfcheck starts on an
//       ephemeral port, round-trips a query set against the snapshot
//       through a real socket client, and exits — the curl-free CI smoke.
//       --spool attaches the live ingest daemon (stream::LiveIngestor):
//       delta batches renamed into DIR as batch-* are applied in-process
//       and atomically swapped into serving; SIGTERM drains the in-flight
//       batch and (with --save) checkpoints the absorbed model. See
//       src/stream/README.md for the spool protocol.
//   mlpctl probe --port N [--host H] [--target /path] [--count K]
//                [--interval_ms M] [--out FILE]
//       Minimal HTTP client over the server's own socket code: fetch
//       TARGET COUNT times, exit 1 on any non-2xx, write the last body to
//       --out. The curl-free CI query hammer / endpoint scraper.
//
// Global flags: --log_level debug|info|warn|error (also honors the
// MLP_LOG_LEVEL environment variable; the flag wins).
//
// Exit codes: 0 success, 1 runtime failure, 2 unknown/missing subcommand,
// 3 missing or invalid required flag (per-subcommand usage printed).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/model.h"
#include "obs/fit_profile.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/trace.h"
#include "eval/cross_validation.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "graph/graph_stats.h"
#include "io/dataset_io.h"
#include "io/model_snapshot.h"
#include "io/table_printer.h"
#include "serve/http_server.h"
#include "stream/delta_batch.h"
#include "stream/delta_ingest.h"
#include "stream/live_ingest.h"
#include "serve/json.h"
#include "serve/model_server.h"
#include "serve/read_model.h"
#include "synth/world_generator.h"
#include "text/venue_vocab.h"

namespace {

using namespace mlp;

// Exit codes — distinct so scripts (and the cli_usage ctest) can tell a
// typo'd subcommand from a missing flag from a genuine runtime failure.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUnknownCommand = 2;
constexpr int kExitUsage = 3;

// Parses "--key value", "--key=value" and bare boolean "--key" flags. A
// token starting with "--" is never consumed as a value, and "=" binds a
// value to its own flag explicitly, so a boolean flag directly followed by
// another "--" flag can no longer steal or shift the next flag's value.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    std::string token = argv[i] + 2;
    std::string::size_type eq = token.find('=');
    if (eq != std::string::npos) {
      flags[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    std::string value = "1";
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    flags[token] = value;
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// Validated numeric flag access. Every numeric flag goes through one of
// these; a value that is not fully numeric ("--port x", "--users 10k",
// "--prune_floor 0.1.2") is a usage error — exit code 3 with the
// subcommand's usage line — instead of atoi's silent zero. The first bad
// flag is reported; callers check ok() once after reading all flags.
class NumericFlags {
 public:
  NumericFlags(const std::map<std::string, std::string>& flags,
               std::string command)
      : flags_(flags), command_(std::move(command)) {}

  int Int(const std::string& key, int fallback) {
    return static_cast<int>(Integer(key, fallback));
  }

  long long Integer(const std::string& key, long long fallback) {
    auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (it->second.empty() || errno != 0 ||
        end != it->second.c_str() + it->second.size()) {
      return Fail(key, it->second), fallback;
    }
    return v;
  }

  uint64_t U64(const std::string& key, uint64_t fallback) {
    auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (it->second.empty() || errno != 0 ||
        end != it->second.c_str() + it->second.size() ||
        it->second[0] == '-') {
      return Fail(key, it->second), fallback;
    }
    return v;
  }

  double Double(const std::string& key, double fallback) {
    auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (it->second.empty() || errno != 0 ||
        end != it->second.c_str() + it->second.size()) {
      return Fail(key, it->second), fallback;
    }
    return v;
  }

  bool ok() const { return ok_; }

 private:
  void Fail(const std::string& key, const std::string& value) {
    if (ok_) {
      std::fprintf(stderr, "mlpctl %s: invalid value '%s' for --%s\n",
                   command_.c_str(), value.c_str(), key.c_str());
    }
    ok_ = false;
  }

  const std::map<std::string, std::string>& flags_;
  const std::string command_;
  bool ok_ = true;
};

// Per-subcommand usage lines, printed alone on a flag error for that
// subcommand and concatenated for the global usage message.
const std::map<std::string, std::string>& UsageTexts() {
  static const std::map<std::string, std::string> kUsage = {
      {"generate", "  mlpctl generate --users N [--seed S] --out DIR\n"},
      {"genworld",
       "  mlpctl genworld --users N --out DIR [--seed S] [--stream]\n"
       "             [--chunk N] [--avg_friends F] [--avg_venues F]\n"},
      {"pack",
       "  mlpctl pack --data DIR --load MODEL.snap [--top_k T]\n"},
      {"stats", "  mlpctl stats --data DIR\n"},
      {"eval",
       "  mlpctl eval --data DIR [--folds K] [--method NAME|all]\n"
       "              [--threads N] [--warm] [--prune]\n"
       "              [--prune_floor F] [--prune_patience K]\n"
       "  mlpctl eval --data DIR --load MODEL.snap\n"},
      {"fit",
       "  mlpctl fit --data DIR --save MODEL.snap [--burn N]\n"
       "             [--sampling N] [--threads N] [--seed S]\n"
       "             [--em-rounds R] [--max-sweeps K]\n"
       "             [--mem_budget_mb M]\n"
       "             [--prune_floor F] [--prune_patience K]\n"
       "             [--no_prune] [--profile] [--trace FILE]\n"},
      {"resume",
       "  mlpctl resume --data DIR --load MODEL.snap\n"
       "             [--save MODEL2.snap] [--max-sweeps K]\n"
       "             [--prune_floor F] [--prune_patience K]\n"
       "             [--no_prune] [--profile] [--trace FILE]\n"},
      {"ingest",
       "  mlpctl ingest --data DIR --load MODEL.snap --delta DIR2\n"
       "             --save MODEL2.snap [--save-data DIR3]\n"
       "             [--resample-burn N] [--resample-sampling N]\n"},
      {"serve",
       "  mlpctl serve --data DIR --load MODEL.snap [--port N]\n"
       "             [--threads K] [--cache_mb M] [--top_k T]\n"
       "             [--access_log[=FILE]] [--slow_request_us N]\n"
       "             [--selfcheck]\n"
       "             [--spool DIR [--spool_poll_ms N]\n"
       "              [--checkpoint_every K] [--save MODEL2.snap]]\n"
       "  mlpctl serve --load MODEL.snap --mmap [--port N]\n"
       "             [--threads K] [--cache_mb M] [--selfcheck]\n"
       "             [--access_log[=FILE]] [--slow_request_us N]\n"},
      {"probe",
       "  mlpctl probe --port N [--host H] [--target /path]\n"
       "             [--count K] [--interval_ms M] [--out FILE]\n"},
  };
  return kUsage;
}

int Usage() {
  std::string out = "usage:\n";
  for (const auto& [command, text] : UsageTexts()) {
    (void)command;
    out += text;
  }
  std::fputs(out.c_str(), stderr);
  return kExitUnknownCommand;
}

// Flag error within a known subcommand: print just that subcommand's
// usage and return the usage exit code (distinct from unknown-command).
int UsageFor(const std::string& command) {
  auto it = UsageTexts().find(command);
  if (it == UsageTexts().end()) return Usage();
  std::fprintf(stderr, "usage:\n%s", it->second.c_str());
  return kExitUsage;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  std::string out = FlagOr(flags, "out", "");
  if (out.empty()) return UsageFor("generate");
  NumericFlags numeric(flags, "generate");
  synth::WorldConfig config;
  config.num_users = numeric.Int("users", 4000);
  config.seed = numeric.U64("seed", 42);
  if (!numeric.ok()) return UsageFor("generate");
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  if (!world.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  std::error_code ec;
  std::filesystem::create_directories(out, ec);
  Status saved = io::SaveDataset(out, *world->graph, &world->truth);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d users, %d following, %d tweeting to %s\n",
              world->graph->num_users(), world->graph->num_following(),
              world->graph->num_tweeting(), out.c_str());
  return 0;
}

// genworld — the scale-test generator. Same world model as `generate`,
// but with the degree knobs exposed and a --stream mode that emits the
// dataset CSVs shard-by-shard through synth::StreamWorldToDataset, never
// materializing the SyntheticWorld: a 1M-user world generates in O(chunk)
// memory instead of O(world).
int CmdGenWorld(const std::map<std::string, std::string>& flags) {
  std::string out = FlagOr(flags, "out", "");
  if (out.empty()) return UsageFor("genworld");
  NumericFlags numeric(flags, "genworld");
  synth::WorldConfig config;
  config.num_users = numeric.Int("users", 4000);
  config.seed = numeric.U64("seed", 42);
  config.avg_friends = numeric.Double("avg_friends", config.avg_friends);
  config.avg_tweeted_venues =
      numeric.Double("avg_venues", config.avg_tweeted_venues);
  const bool stream = FlagOr(flags, "stream", "0") != "0";
  const int chunk = numeric.Int("chunk", 65536);
  if (!numeric.ok()) return UsageFor("genworld");

  std::error_code ec;
  std::filesystem::create_directories(out, ec);
  if (!stream) {
    Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
    if (!world.ok()) {
      std::fprintf(stderr, "genworld failed: %s\n",
                   world.status().ToString().c_str());
      return kExitRuntime;
    }
    Status saved = io::SaveDataset(out, *world->graph, &world->truth);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return kExitRuntime;
    }
    std::printf("wrote %d users, %d following, %d tweeting to %s\n",
                world->graph->num_users(), world->graph->num_following(),
                world->graph->num_tweeting(), out.c_str());
    return kExitOk;
  }
  Result<synth::StreamWorldStats> stats =
      synth::StreamWorldToDataset(config, out, chunk);
  if (!stats.ok()) {
    std::fprintf(stderr, "genworld --stream failed: %s\n",
                 stats.status().ToString().c_str());
    return kExitRuntime;
  }
  std::printf(
      "streamed %lld users, %lld following, %lld tweeting "
      "(%lld labeled, %d chunks) to %s\n",
      static_cast<long long>(stats->num_users),
      static_cast<long long>(stats->num_following),
      static_cast<long long>(stats->num_tweeting),
      static_cast<long long>(stats->num_labeled), stats->chunks, out.c_str());
  return kExitOk;
}

struct LoadedWorld {
  geo::Gazetteer gazetteer = geo::Gazetteer::FromEmbedded();
  std::unique_ptr<geo::CityDistanceMatrix> distances;
  text::VenueVocabulary vocab = text::VenueVocabulary::Build(gazetteer);
  std::unique_ptr<io::LoadedDataset> data;
};

Result<LoadedWorld> LoadWorld(const std::string& dir) {
  LoadedWorld world;
  world.distances =
      std::make_unique<geo::CityDistanceMatrix>(world.gazetteer, 1.0);
  Result<io::LoadedDataset> data = io::LoadDataset(dir, world.vocab.size());
  if (!data.ok()) return data.status();
  world.data = std::make_unique<io::LoadedDataset>(std::move(*data));
  return world;
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "data", "");
  if (dir.empty()) return UsageFor("stats");
  Result<LoadedWorld> world = LoadWorld(dir);
  if (!world.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  graph::GraphStats stats = graph::ComputeGraphStats(world->data->graph);
  io::TablePrinter table({"statistic", "value"});
  table.AddRow({"users", std::to_string(stats.num_users)});
  table.AddRow({"labeled users", std::to_string(stats.num_labeled)});
  table.AddRow({"following relationships",
                std::to_string(stats.num_following)});
  table.AddRow({"tweeting relationships", std::to_string(stats.num_tweeting)});
  table.AddRow({"avg friends/user",
                StringPrintf("%.1f", stats.avg_friends_per_user)});
  table.AddRow({"avg venues/user",
                StringPrintf("%.1f", stats.avg_venues_per_user)});
  auto referents = world->vocab.ReferentTable();
  table.AddRow({"neighbor location coverage",
                StringPrintf("%.2f", graph::NeighborLocationCoverage(
                                         world->data->graph, referents))});
  table.Print();
  return 0;
}

// Full-supervision ModelInput over a loaded world (every registered home
// observed) — the fit / resume / serving workflow, as opposed to the
// masked per-fold inputs of CV evaluation.
core::ModelInput FullInput(
    const LoadedWorld& world,
    const std::vector<std::vector<geo::CityId>>& referents) {
  core::ModelInput input;
  input.gazetteer = &world.gazetteer;
  input.graph = &world.data->graph;
  input.distances = world.distances.get();
  input.venue_referents = &referents;
  input.observed_home = eval::RegisteredHomes(world.data->graph);
  return input;
}

// Applies the pruning flags onto `config`. Absent flags leave the config
// untouched (fit: the MlpConfig defaults; resume: the stored policy), and
// an explicit --no_prune always wins.
void ApplyPruneFlags(const std::map<std::string, std::string>& flags,
                     NumericFlags* numeric, core::MlpConfig* config) {
  config->prune_floor = numeric->Double("prune_floor", config->prune_floor);
  config->prune_patience =
      numeric->Int("prune_patience", config->prune_patience);
  if (FlagOr(flags, "no_prune", "0") != "0") config->prune_floor = 0.0;
}

int SweepsDone(const core::FitCheckpoint& checkpoint) {
  int per_round = checkpoint.config.burn_in_iterations +
                  checkpoint.config.sampling_iterations;
  return checkpoint.progress.round * per_round +
         checkpoint.progress.burn_in_done +
         checkpoint.progress.sampling_done;
}

int TotalSweeps(const core::MlpConfig& config) {
  return (std::max(0, config.gibbs_em_rounds) + 1) *
         (config.burn_in_iterations + config.sampling_iterations);
}

void PrintFitSummary(const core::FitCheckpoint& checkpoint,
                     const core::MlpResult& result) {
  std::printf("%s after %d/%d sweeps: alpha=%.4f beta=%.6f threads=%d\n",
              checkpoint.complete ? "fit complete" : "fit checkpointed",
              SweepsDone(checkpoint), TotalSweeps(checkpoint.config),
              result.alpha, result.beta, checkpoint.config.num_threads);
}

int SaveSnapshotTo(const std::string& path, const core::ModelInput& input,
                   const core::FitCheckpoint& checkpoint,
                   const core::MlpResult& result) {
  io::ModelSnapshot snapshot = io::MakeModelSnapshot(input, checkpoint, result);
  Status saved = io::SaveModelSnapshot(path, snapshot);
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot save failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::error_code ec;
  auto bytes = std::filesystem::file_size(path, ec);
  std::printf("snapshot -> %s (%llu bytes)\n", path.c_str(),
              ec ? 0ULL : static_cast<unsigned long long>(bytes));
  return 0;
}

// --profile / --trace session shared by fit and resume: snapshots the
// phase counters before the fit and installs a trace recorder; Finish()
// (success path only) prints the per-phase table and writes the Chrome
// trace. The destructor uninstalls the recorder on every path, so an
// errored fit can't leave a dangling recorder pointer installed.
class FitProfileSession {
 public:
  FitProfileSession(const std::map<std::string, std::string>& flags,
                    int num_threads)
      : profile_(FlagOr(flags, "profile", "0") != "0"),
        trace_path_(FlagOr(flags, "trace", "")),
        num_threads_(num_threads) {
    if (profile_) before_ = obs::Registry::Global().CounterValues();
    if (!trace_path_.empty()) obs::SetTraceRecorder(&recorder_);
  }

  ~FitProfileSession() {
    if (!trace_path_.empty()) obs::SetTraceRecorder(nullptr);
  }

  int Finish() {
    if (!trace_path_.empty()) {
      obs::SetTraceRecorder(nullptr);
      Status written = recorder_.WriteChromeTrace(trace_path_);
      if (!written.ok()) {
        std::fprintf(stderr, "trace write failed: %s\n",
                     written.ToString().c_str());
        return kExitRuntime;
      }
      std::printf("trace -> %s (%zu events; open in chrome://tracing)\n",
                  trace_path_.c_str(), recorder_.event_count());
    }
    if (profile_) {
      const obs::FitProfile profile = obs::ComputeFitProfile(
          before_, obs::Registry::Global().CounterValues(), num_threads_);
      std::printf(
          "profile: %llu sweeps, %.1f ms sweep wall-clock, "
          "%.1f%% attributed (threads=%d)\n",
          static_cast<unsigned long long>(profile.sweeps),
          profile.sweep_wall_ms, profile.accounted_pct, num_threads_);
      io::TablePrinter table({"phase", "wall ms", "% of sweep"});
      for (const obs::PhaseRow& row : profile.rows) {
        table.AddRow({row.phase, StringPrintf("%.1f", row.wall_ms),
                      StringPrintf("%.1f%%", row.pct_of_sweep)});
      }
      table.Print();
      // Memory picture at end of fit: exact accounted footprint (what the
      // --mem_budget_mb enforcement gates on) next to the process RSS.
      obs::UpdateProcessRssGauges();
      obs::Registry& registry = obs::Registry::Global();
      auto mb = [&registry](const char* name) {
        return registry.GetGauge(name)->Value() / (1024.0 * 1024.0);
      };
      std::printf(
          "memory: accounted %.1f MB (arena %.1f MB, candidates %.1f MB), "
          "budget %.0f MB, rss %.1f MB (peak %.1f MB), "
          "budget tightenings %llu\n",
          mb(obs::kMemFitAccountedBytes), mb(obs::kMemArenaBytes),
          mb(obs::kMemCandidateBytes), mb(obs::kMemFitBudgetBytes),
          mb(obs::kMemProcessRssBytes), mb(obs::kMemProcessPeakRssBytes),
          static_cast<unsigned long long>(
              registry.GetCounter(obs::kFitBudgetTightenTotal)->Value()));
    }
    return kExitOk;
  }

 private:
  const bool profile_;
  const std::string trace_path_;
  const int num_threads_;
  std::map<std::string, uint64_t> before_;
  obs::TraceRecorder recorder_;
};

int CmdFit(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "data", "");
  std::string save = FlagOr(flags, "save", "");
  if (dir.empty() || save.empty()) return UsageFor("fit");
  NumericFlags numeric(flags, "fit");
  core::MlpConfig config;
  config.burn_in_iterations = numeric.Int("burn", 10);
  config.sampling_iterations = numeric.Int("sampling", 14);
  config.num_threads = std::max(1, numeric.Int("threads", 1));
  config.sync_every_sweeps = std::max(1, numeric.Int("sync-every", 1));
  config.gibbs_em_rounds = numeric.Int("em-rounds", 0);
  config.seed = numeric.U64("seed", 1234);
  ApplyPruneFlags(flags, &numeric, &config);

  core::FitCheckpoint checkpoint;
  core::FitOptions opts;
  opts.max_total_sweeps = numeric.Int("max-sweeps", -1);
  opts.mem_budget_mb = numeric.Int("mem_budget_mb", 0);
  opts.checkpoint_out = &checkpoint;
  if (!numeric.ok()) return UsageFor("fit");

  Result<LoadedWorld> world = LoadWorld(dir);
  if (!world.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  auto referents = world->vocab.ReferentTable();
  core::ModelInput input = FullInput(*world, referents);
  FitProfileSession session(flags, config.num_threads);
  Result<core::MlpResult> result = core::MlpModel(config).Fit(input, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  PrintFitSummary(checkpoint, *result);
  if (int rc = session.Finish(); rc != kExitOk) return rc;
  return SaveSnapshotTo(save, input, checkpoint, *result);
}

int CmdResume(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "data", "");
  std::string load = FlagOr(flags, "load", "");
  if (dir.empty() || load.empty()) return UsageFor("resume");
  Result<io::ModelSnapshot> snapshot = io::LoadModelSnapshot(load);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  Result<LoadedWorld> world = LoadWorld(dir);
  if (!world.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  auto referents = world->vocab.ReferentTable();
  core::ModelInput input = FullInput(*world, referents);

  // The snapshot carries the config the fit was started with; resuming
  // under anything else would change the sweep program, so the only CLI
  // overrides are the pruning knobs — sweep-time policy that is
  // deliberately outside the fingerprint (so e.g. a v1 or unpruned
  // snapshot can resume WITH pruning, or a pruned one finish without).
  NumericFlags numeric(flags, "resume");
  core::MlpConfig config = snapshot->checkpoint.config;
  ApplyPruneFlags(flags, &numeric, &config);
  snapshot->checkpoint.config = config;
  core::FitCheckpoint checkpoint;
  core::FitOptions opts;
  opts.max_total_sweeps = numeric.Int("max-sweeps", -1);
  opts.mem_budget_mb = numeric.Int("mem_budget_mb", 0);
  opts.warm_start = &snapshot->checkpoint;
  opts.checkpoint_out = &checkpoint;
  if (!numeric.ok()) return UsageFor("resume");
  FitProfileSession session(flags, config.num_threads);
  Result<core::MlpResult> result = core::MlpModel(config).Fit(input, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "resume failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  PrintFitSummary(checkpoint, *result);
  if (int rc = session.Finish(); rc != kExitOk) return rc;
  std::string save = FlagOr(flags, "save", "");
  if (!save.empty()) {
    return SaveSnapshotTo(save, input, checkpoint, *result);
  }
  return 0;
}

// Loads a snapshot and binds it to the loaded dataset: user counts must
// agree and the stored fingerprint must match the priors derived from this
// dataset — the same guard resume uses, so no --load subcommand (eval,
// serve, ingest) can silently pair a model with an unrelated world. On
// mismatch the error names the snapshot's format version and both
// fingerprints, so the operator can tell a stale model from a wrong
// directory at a glance.
Result<io::ModelSnapshot> LoadSnapshotChecked(const LoadedWorld& world,
                                              const std::string& path) {
  Result<io::ModelSnapshot> snapshot = io::LoadModelSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  const size_t num_users = world.data->graph.num_users();
  if (snapshot->result.home.size() != num_users) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot %s (format v%u) has %zu users but dataset has %zu — "
        "wrong --data directory?",
        path.c_str(), snapshot->version, snapshot->result.home.size(),
        num_users));
  }
  auto referents = world.vocab.ReferentTable();
  core::ModelInput input = FullInput(world, referents);
  core::CandidateSpace space =
      core::CandidateSpace::Build(input, snapshot->checkpoint.config);
  const uint64_t expected =
      core::FitFingerprint(input, snapshot->checkpoint.config, space);
  if (expected != snapshot->checkpoint.fingerprint) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot %s does not match this dataset: format v%u, stored "
        "fingerprint %016llx, dataset fingerprint %016llx — wrong --data "
        "directory, or the dataset changed since the fit?",
        path.c_str(), snapshot->version,
        static_cast<unsigned long long>(snapshot->checkpoint.fingerprint),
        static_cast<unsigned long long>(expected)));
  }
  return snapshot;
}

// Serving-style evaluation of a persisted model: score the stored home
// estimates against the dataset's registered homes, no refit.
int EvalSnapshot(const LoadedWorld& world, const std::string& path) {
  Result<io::ModelSnapshot> snapshot = LoadSnapshotChecked(world, path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::vector<geo::CityId> registered =
      eval::RegisteredHomes(world.data->graph);
  std::vector<graph::UserId> labeled;
  for (graph::UserId u = 0; u < static_cast<graph::UserId>(registered.size());
       ++u) {
    if (registered[u] != geo::kInvalidCity) labeled.push_back(u);
  }
  PrintFitSummary(snapshot->checkpoint, snapshot->result);
  io::TablePrinter table({"method", "ACC@100", "ACC@20"});
  table.AddRow(
      {"snapshot",
       StringPrintf("%.2f%%", eval::AccuracyWithin(snapshot->result.home,
                                                   registered, labeled,
                                                   *world.distances, 100.0) *
                                  100.0),
       StringPrintf("%.2f%%", eval::AccuracyWithin(snapshot->result.home,
                                                   registered, labeled,
                                                   *world.distances, 20.0) *
                                  100.0)});
  table.Print();
  return 0;
}

int CmdEval(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "data", "");
  if (dir.empty()) return UsageFor("eval");
  NumericFlags numeric(flags, "eval");
  int folds = numeric.Int("folds", 5);
  std::string method = FlagOr(flags, "method", "all");
  int threads = numeric.Int("threads", 1);
  if (threads < 1) threads = 1;
  bool warm = FlagOr(flags, "warm", "0") != "0";
  if (!numeric.ok()) return UsageFor("eval");

  Result<LoadedWorld> world = LoadWorld(dir);
  if (!world.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  std::string load = FlagOr(flags, "load", "");
  if (!load.empty()) return EvalSnapshot(*world, load);
  auto referents = world->vocab.ReferentTable();
  std::vector<geo::CityId> registered =
      eval::RegisteredHomes(world->data->graph);
  eval::FoldAssignment assignment = eval::MakeKFolds(registered, 5, 17);
  if (folds < 1) folds = 1;
  if (folds > 5) folds = 5;

  core::MlpConfig config;
  config.burn_in_iterations = 10;
  config.sampling_iterations = 14;
  ApplyPruneFlags(flags, &numeric, &config);
  if (!numeric.ok()) return UsageFor("eval");
  // The MLP_PR row appears when pruning is requested AND actually on: an
  // explicit --prune_floor 0 or --no_prune means no pruned variant at all
  // (MakePrunedMlpMethod would otherwise resurrect the default floor).
  const bool disabled = FlagOr(flags, "no_prune", "0") != "0" ||
                        (flags.count("prune_floor") && config.prune_floor <= 0.0);
  const bool prune =
      !disabled &&
      (FlagOr(flags, "prune", "0") != "0" || config.prune_floor > 0.0);
  io::TablePrinter table({"method", "ACC@100", "ACC@20"});
  for (const eval::NamedMethod& nm :
       eval::StandardLineup(config, threads, warm, prune)) {
    if (method != "all" && nm.name != method) continue;
    double acc100 = 0.0, acc20 = 0.0;
    for (int fold = 0; fold < folds; ++fold) {
      core::ModelInput input;
      input.gazetteer = &world->gazetteer;
      input.graph = &world->data->graph;
      input.distances = world->distances.get();
      input.venue_referents = &referents;
      input.observed_home = assignment.MaskedHomes(registered, fold);
      Result<eval::MethodOutput> out = nm.method(input);
      if (!out.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", nm.name.c_str(),
                     out.status().ToString().c_str());
        return 1;
      }
      std::vector<graph::UserId> test_users = assignment.TestUsers(fold);
      acc100 += eval::AccuracyWithin(out->home, registered, test_users,
                                     *world->distances, 100.0);
      acc20 += eval::AccuracyWithin(out->home, registered, test_users,
                                    *world->distances, 20.0);
    }
    table.AddRow({nm.name, StringPrintf("%.2f%%", acc100 / folds * 100.0),
                  StringPrintf("%.2f%%", acc20 / folds * 100.0)});
  }
  table.Print();
  return 0;
}

// ----------------------------------------------------------------- ingest

int CmdIngest(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "data", "");
  const std::string load = FlagOr(flags, "load", "");
  const std::string delta_dir = FlagOr(flags, "delta", "");
  const std::string save = FlagOr(flags, "save", "");
  if (dir.empty() || load.empty() || delta_dir.empty() || save.empty()) {
    return UsageFor("ingest");
  }

  Result<LoadedWorld> world = LoadWorld(dir);
  if (!world.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 world.status().ToString().c_str());
    return kExitRuntime;
  }
  Result<io::ModelSnapshot> snapshot = LoadSnapshotChecked(*world, load);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 snapshot.status().ToString().c_str());
    return kExitRuntime;
  }
  Result<stream::DeltaBatch> delta = stream::LoadDeltaBatch(delta_dir);
  if (!delta.ok()) {
    std::fprintf(stderr, "delta load failed: %s\n",
                 delta.status().ToString().c_str());
    return kExitRuntime;
  }

  auto referents = world->vocab.ReferentTable();
  core::ModelInput base_input = FullInput(*world, referents);
  NumericFlags numeric(flags, "ingest");
  stream::IngestOptions options;
  options.resample_burn = std::max(0, numeric.Int("resample-burn", 3));
  options.resample_sampling = std::max(1, numeric.Int("resample-sampling", 5));
  if (!numeric.ok()) return UsageFor("ingest");

  const auto start = std::chrono::steady_clock::now();
  Result<stream::IngestOutput> ingested = stream::ApplyDeltaBatch(
      base_input, snapshot->checkpoint, snapshot->result, *delta, options);
  if (!ingested.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 ingested.status().ToString().c_str());
    return kExitRuntime;
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  const core::DeltaReport& report = ingested->report;
  std::printf(
      "ingested +%d users, +%d following, +%d tweeting in %.2fs: "
      "%d/%d shards resampled, %d rows migrated, layout v%llu\n",
      report.new_users, report.new_following, report.new_tweeting, seconds,
      report.shards_touched, report.shards_total, report.migrated_rows,
      static_cast<unsigned long long>(
          ingested->checkpoint.activation.layout_version));

  core::ModelInput merged_input = base_input;
  merged_input.graph = ingested->merged_graph.get();
  merged_input.observed_home = ingested->merged_observed_home;
  const std::string save_data = FlagOr(flags, "save-data", "");
  if (!save_data.empty()) {
    // The merged world the updated snapshot is bound to — eval/serve/a
    // later ingest need a --data directory whose fingerprint matches.
    std::error_code ec;
    std::filesystem::create_directories(save_data, ec);
    Status saved = io::SaveDataset(save_data, *ingested->merged_graph);
    if (!saved.ok()) {
      std::fprintf(stderr, "merged dataset save failed: %s\n",
                   saved.ToString().c_str());
      return kExitRuntime;
    }
    std::printf("merged dataset -> %s\n", save_data.c_str());
  }
  return SaveSnapshotTo(save, merged_input, ingested->checkpoint,
                        ingested->result);
}

// ------------------------------------------------------------------ serve

// SIGINT/SIGTERM → graceful shutdown flag for the serve loop. sig_atomic_t
// because the handler may interrupt any instruction.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleShutdownSignal(int) { g_shutdown_requested = 1; }

// --selfcheck: a real socket round trip against the just-started server,
// validating status codes, JSON well-formedness and snapshot consistency.
// This is the CI smoke's curl replacement (cmake/serve_smoke.cmake).
int RunSelfcheck(const serve::ModelServer& server,
                 const io::ModelSnapshot& snapshot,
                 const graph::SocialGraph& graph,
                 const serve::ServeOptions& options) {
  const int port = server.port();
  int failures = 0;
  auto check = [&](const char* what, bool ok) {
    std::printf("selfcheck %-28s %s\n", what, ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  };

  Result<serve::HttpResponse> health =
      serve::HttpFetch("127.0.0.1", port, "GET", "/healthz");
  check("/healthz", health.ok() && health->status == 200 &&
                        serve::ParseJson(health->body).ok());

  // A user with a non-empty profile (every fitted snapshot has one).
  graph::UserId probe_user = 0;
  for (graph::UserId u = 0;
       u < static_cast<graph::UserId>(snapshot.result.profiles.size()); ++u) {
    if (!snapshot.result.profiles[u].entries().empty()) {
      probe_user = u;
      break;
    }
  }
  Result<serve::HttpResponse> user = serve::HttpFetch(
      "127.0.0.1", port, "GET", "/v1/user/" + std::to_string(probe_user));
  bool user_ok = user.ok() && user->status == 200;
  if (user_ok) {
    Result<serve::JsonValue> parsed = serve::ParseJson(user->body);
    user_ok = parsed.ok() && parsed->is_object();
    if (user_ok) {
      const serve::JsonValue* home = parsed->Find("home");
      const geo::CityId expected = snapshot.result.home[probe_user];
      if (expected == geo::kInvalidCity) {
        user_ok = home != nullptr &&
                  home->type == serve::JsonValue::Type::kNull;
      } else {
        const serve::JsonValue* id =
            home == nullptr ? nullptr : home->Find("city_id");
        user_ok = id != nullptr && id->AsInt(-1) == expected;
      }
    }
  }
  check("/v1/user (home parity)", user_ok);

  if (graph.num_following() > 0) {
    const graph::FollowingEdge& edge = graph.following(0);
    Result<serve::HttpResponse> edge_response = serve::HttpFetch(
        "127.0.0.1", port, "GET",
        "/v1/edge/" + std::to_string(edge.follower) + "/" +
            std::to_string(edge.friend_user));
    bool edge_ok = edge_response.ok() && edge_response->status == 200;
    if (edge_ok) {
      Result<serve::JsonValue> parsed = serve::ParseJson(edge_response->body);
      edge_ok = parsed.ok() && parsed->Find("explanation") != nullptr;
    }
    check("/v1/edge", edge_ok);

    std::string body = "{\"users\":[" + std::to_string(probe_user) +
                       "],\"edges\":[[" + std::to_string(edge.follower) +
                       "," + std::to_string(edge.friend_user) + "]]}";
    Result<serve::HttpResponse> batch =
        serve::HttpFetch("127.0.0.1", port, "POST", "/v1/batch", body);
    bool batch_ok = batch.ok() && batch->status == 200;
    if (batch_ok) {
      Result<serve::JsonValue> parsed = serve::ParseJson(batch->body);
      batch_ok = parsed.ok() && parsed->Find("users") != nullptr &&
                 parsed->Find("users")->items.size() == 1 &&
                 parsed->Find("edges") != nullptr &&
                 parsed->Find("edges")->items.size() == 1;
    }
    check("/v1/batch", batch_ok);
  }

  Result<serve::HttpResponse> stats =
      serve::HttpFetch("127.0.0.1", port, "GET", "/statsz?format=csv");
  check("/statsz?format=csv",
        stats.ok() && stats->status == 200 &&
            stats->body.rfind("stat,value", 0) == 0);

  // Prometheus exposition: must carry the request-latency histogram (with
  // cumulative le="..." buckets — earlier requests in this selfcheck have
  // already recorded into it) and the cache counters.
  Result<serve::HttpResponse> metrics =
      serve::HttpFetch("127.0.0.1", port, "GET", "/metricsz");
  check("/metricsz (prometheus)",
        metrics.ok() && metrics->status == 200 &&
            metrics->body.find(
                "# TYPE serve_request_latency_us histogram") !=
                std::string::npos &&
            metrics->body.find("serve_request_latency_us_bucket{le=\"") !=
                std::string::npos &&
            metrics->body.find("serve_request_latency_us_count") !=
                std::string::npos &&
            metrics->body.find("# TYPE serve_cache_hits counter") !=
                std::string::npos &&
            metrics->body.find("serve_requests_total") != std::string::npos);

  // Per-endpoint latency histograms + fit gauges land on the same scrape.
  check("/metricsz (request stages)",
        metrics.ok() &&
            metrics->body.find("serve_user_miss_latency_us") !=
                std::string::npos &&
            metrics->body.find("serve_stage_render_ns") !=
                std::string::npos &&
            metrics->body.find("serve_seconds_since_last_swap") !=
                std::string::npos);

  Result<serve::HttpResponse> missing =
      serve::HttpFetch("127.0.0.1", port, "GET", "/v1/user/999999999");
  check("404 on unknown user", missing.ok() && missing->status == 404);

  Result<serve::HttpResponse> statusz =
      serve::HttpFetch("127.0.0.1", port, "GET", "/statusz");
  check("/statusz (dashboard)",
        statusz.ok() && statusz->status == 200 &&
            statusz->body.find("p99") != std::string::npos &&
            statusz->body.find("model_generation") != std::string::npos &&
            statusz->body.find("seconds_since_last_swap") !=
                std::string::npos);

  // Slow-request ring: JSON shape always; with a threshold at or below
  // 1ms the requests above must have been captured, stage breakdowns
  // included (this is how the smoke demonstrates a "slow" request).
  Result<serve::HttpResponse> slowz =
      serve::HttpFetch("127.0.0.1", port, "GET", "/debug/slowz");
  bool slowz_ok = slowz.ok() && slowz->status == 200;
  std::vector<long long> slow_ids;
  if (slowz_ok) {
    Result<serve::JsonValue> parsed = serve::ParseJson(slowz->body);
    slowz_ok = parsed.ok() && parsed->is_object() &&
               parsed->Find("requests") != nullptr &&
               parsed->Find("requests")->is_array();
    if (slowz_ok && options.slow_request_us > 0 &&
        options.slow_request_us <= 1000) {
      const serve::JsonValue* requests = parsed->Find("requests");
      slowz_ok = !requests->items.empty();
      for (const serve::JsonValue& r : requests->items) {
        const serve::JsonValue* stages = r.Find("stages");
        slowz_ok = slowz_ok && stages != nullptr &&
                   stages->Find("render_us") != nullptr &&
                   stages->Find("parse_us") != nullptr;
        if (const serve::JsonValue* id = r.Find("id")) {
          slow_ids.push_back(id->AsInt(-1));
        }
      }
    }
  }
  check("/debug/slowz", slowz_ok);

  // Access-log / trace correlation: every line is one JSON object carrying
  // the request id, and every id retained in the slow ring shows up in the
  // log (the slow requests above finished several round trips ago, and the
  // server flushes per line).
  if (options.access_log && !options.access_log_path.empty()) {
    std::ifstream in(options.access_log_path);
    bool log_ok = in.good();
    std::set<long long> logged_ids;
    int lines = 0;
    std::string line;
    while (log_ok && std::getline(in, line)) {
      if (line.empty()) continue;
      ++lines;
      Result<serve::JsonValue> parsed = serve::ParseJson(line);
      const serve::JsonValue* id =
          parsed.ok() && parsed->is_object() ? parsed->Find("id") : nullptr;
      log_ok = id != nullptr && parsed->Find("total_us") != nullptr &&
               parsed->Find("status") != nullptr;
      if (log_ok) logged_ids.insert(id->AsInt(-1));
    }
    log_ok = log_ok && lines > 0;
    for (long long id : slow_ids) {
      log_ok = log_ok && logged_ids.count(id) != 0;
    }
    check("access log (id correlation)", log_ok);
  }

  std::printf("selfcheck %s\n", failures == 0 ? "passed" : "FAILED");
  return failures == 0 ? kExitOk : kExitRuntime;
}

// The serve loop shared by both backings: signal-driven shutdown with
// request draining. When a live ingestor is attached it drains FIRST —
// the in-flight batch finishes applying and swapping (and checkpoints,
// when configured) while the server still answers queries; only then do
// the request threads stop.
int ServeLoop(serve::ModelServer& server,
              stream::LiveIngestor* ingestor = nullptr) {
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  std::printf("Ctrl-C to stop\n");
  std::fflush(stdout);
  while (!g_shutdown_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  if (ingestor != nullptr) {
    std::printf("\ndraining live ingest (finishing in-flight batch)...\n");
    ingestor->Stop();
    std::printf("live ingest: %llu batches applied, %llu quarantined\n",
                static_cast<unsigned long long>(ingestor->batches_applied()),
                static_cast<unsigned long long>(ingestor->batches_failed()));
  }
  std::printf("shutting down (draining in-flight requests)...\n");
  server.Stop();
  std::printf("served %llu requests over %llu connections\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.connections_accepted()));
  return kExitOk;
}

// --selfcheck for the mmap backing: no snapshot or graph is loaded, so the
// probes come from the read model itself (ExampleEdge / num_users) and the
// parity check is against the mapped pre-rendered fragment — which is also
// exactly what the in-memory path would have rendered.
int RunSelfcheckMmap(const serve::ModelServer& server) {
  const int port = server.port();
  const serve::ReadModel& model = *server.model();
  int failures = 0;
  auto check = [&](const char* what, bool ok) {
    std::printf("selfcheck %-28s %s\n", what, ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  };

  Result<serve::HttpResponse> health =
      serve::HttpFetch("127.0.0.1", port, "GET", "/healthz");
  check("/healthz", health.ok() && health->status == 200 &&
                        serve::ParseJson(health->body).ok());

  if (model.num_users() > 0) {
    Result<serve::HttpResponse> user =
        serve::HttpFetch("127.0.0.1", port, "GET", "/v1/user/0");
    bool user_ok = user.ok() && user->status == 200;
    if (user_ok) {
      Result<serve::JsonValue> parsed = serve::ParseJson(user->body);
      user_ok = parsed.ok() && parsed->is_object() &&
                parsed->Find("user") != nullptr &&
                parsed->Find("user")->AsInt(-1) == 0 &&
                user->body == model.UserJson(0);
    }
    check("/v1/user (mmap parity)", user_ok);
  }

  graph::UserId src = 0, dst = 0;
  if (model.ExampleEdge(&src, &dst)) {
    Result<serve::HttpResponse> edge_response = serve::HttpFetch(
        "127.0.0.1", port, "GET",
        "/v1/edge/" + std::to_string(src) + "/" + std::to_string(dst));
    bool edge_ok = edge_response.ok() && edge_response->status == 200;
    if (edge_ok) {
      Result<serve::JsonValue> parsed = serve::ParseJson(edge_response->body);
      edge_ok = parsed.ok() && parsed->Find("explanation") != nullptr;
    }
    check("/v1/edge", edge_ok);

    std::string body = "{\"users\":[0],\"edges\":[[" + std::to_string(src) +
                       "," + std::to_string(dst) + "]]}";
    Result<serve::HttpResponse> batch =
        serve::HttpFetch("127.0.0.1", port, "POST", "/v1/batch", body);
    bool batch_ok = batch.ok() && batch->status == 200;
    if (batch_ok) {
      Result<serve::JsonValue> parsed = serve::ParseJson(batch->body);
      batch_ok = parsed.ok() && parsed->Find("users") != nullptr &&
                 parsed->Find("users")->items.size() == 1 &&
                 parsed->Find("edges") != nullptr &&
                 parsed->Find("edges")->items.size() == 1;
    }
    check("/v1/batch", batch_ok);
  }

  Result<serve::HttpResponse> stats =
      serve::HttpFetch("127.0.0.1", port, "GET", "/statsz?format=csv");
  check("/statsz?format=csv",
        stats.ok() && stats->status == 200 &&
            stats->body.rfind("stat,value", 0) == 0 &&
            stats->body.find("mmap_backed") != std::string::npos);

  Result<serve::HttpResponse> statusz =
      serve::HttpFetch("127.0.0.1", port, "GET", "/statusz");
  check("/statusz (dashboard)",
        statusz.ok() && statusz->status == 200 &&
            statusz->body.find("p99") != std::string::npos &&
            statusz->body.find("model_generation") != std::string::npos &&
            statusz->body.find("seconds_since_last_swap") !=
                std::string::npos);

  Result<serve::HttpResponse> missing =
      serve::HttpFetch("127.0.0.1", port, "GET", "/v1/user/999999999");
  check("404 on unknown user", missing.ok() && missing->status == 404);

  std::printf("selfcheck %s\n", failures == 0 ? "passed" : "FAILED");
  return failures == 0 ? kExitOk : kExitRuntime;
}

int CmdServe(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "data", "");
  std::string load = FlagOr(flags, "load", "");
  const bool mmap = FlagOr(flags, "mmap", "0") != "0";
  if (load.empty() || (dir.empty() && !mmap)) return UsageFor("serve");
  const bool selfcheck = FlagOr(flags, "selfcheck", "0") != "0";

  NumericFlags numeric(flags, "serve");
  serve::ServeOptions options;
  // Ephemeral port under --selfcheck so smoke runs never collide.
  options.port = numeric.Int("port", selfcheck ? 0 : 8080);
  options.threads = std::max(1, numeric.Int("threads", 4));
  options.cache_mb = std::max(0, numeric.Int("cache_mb", 16));
  options.top_k = numeric.Int("top_k", 10);
  options.slow_request_us = numeric.Integer("slow_request_us", 10000);

  // Live ingest daemon flags. Coherence is a usage error (exit 3), not a
  // runtime one: the spool knobs only mean something together, and the
  // mmap backing has no in-memory fit state to apply deltas to.
  const std::string spool = FlagOr(flags, "spool", "");
  stream::LiveIngestOptions live;
  live.spool_dir = spool;
  live.poll_ms = numeric.Int("spool_poll_ms", 200);
  live.checkpoint_every = numeric.Int("checkpoint_every", 0);
  live.checkpoint_path = FlagOr(flags, "save", "");
  if (!numeric.ok()) return UsageFor("serve");
  if (spool.empty() && (flags.count("spool_poll_ms") != 0 ||
                        flags.count("checkpoint_every") != 0 ||
                        flags.count("save") != 0)) {
    std::fprintf(stderr,
                 "mlpctl serve: --spool_poll_ms/--checkpoint_every/--save "
                 "need --spool\n");
    return UsageFor("serve");
  }
  if (!spool.empty() && mmap) {
    std::fprintf(stderr,
                 "mlpctl serve: --spool needs the in-memory backing "
                 "(no --mmap)\n");
    return UsageFor("serve");
  }
  if (!spool.empty() && live.poll_ms <= 0) {
    std::fprintf(stderr, "mlpctl serve: --spool_poll_ms must be > 0\n");
    return UsageFor("serve");
  }
  if (live.checkpoint_every > 0 && live.checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "mlpctl serve: --checkpoint_every needs --save PATH\n");
    return UsageFor("serve");
  }
  // --access_log enables the structured log; "--access_log=FILE" (or
  // "--access_log FILE") appends JSON lines to FILE, the bare flag routes
  // them through MLP_LOG(kInfo).
  if (flags.count("access_log") != 0) {
    options.access_log = true;
    const std::string path = FlagOr(flags, "access_log", "");
    if (path != "1") options.access_log_path = path;
  }

  if (mmap) {
    // Out-of-core: map the packed serve section; no dataset, no snapshot
    // parse, no JSON render — resident memory is just the touched pages.
    // The gazetteer is not needed (responses are pre-rendered).
    Result<serve::ReadModel> model =
        serve::ReadModel::MapServeSection(load, nullptr);
    if (!model.ok()) {
      std::fprintf(stderr, "mmap serve failed: %s\n",
                   model.status().ToString().c_str());
      return kExitRuntime;
    }
    serve::ModelServer server(std::move(*model), options);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "serve failed: %s\n", started.ToString().c_str());
      return kExitRuntime;
    }
    std::printf(
        "serving %d users / %d edges (mmap-backed) on http://127.0.0.1:%d "
        "(threads=%d cache=%dMB)\n",
        server.model()->num_users(), server.model()->num_edges(),
        server.port(), options.threads, options.cache_mb);
    if (selfcheck) {
      int rc = RunSelfcheckMmap(server);
      server.Stop();
      return rc;
    }
    return ServeLoop(server);
  }

  Result<LoadedWorld> world = LoadWorld(dir);
  if (!world.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 world.status().ToString().c_str());
    return kExitRuntime;
  }
  Result<io::ModelSnapshot> snapshot = LoadSnapshotChecked(*world, load);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 snapshot.status().ToString().c_str());
    return kExitRuntime;
  }
  serve::ReadModelOptions model_options;
  model_options.top_k = options.top_k;
  Result<serve::ReadModel> model =
      serve::ReadModel::Build(*snapshot, world->data->graph,
                              &world->gazetteer, model_options);
  if (!model.ok()) {
    std::fprintf(stderr, "read model build failed: %s\n",
                 model.status().ToString().c_str());
    return kExitRuntime;
  }

  serve::ModelServer server(std::move(*model), options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", started.ToString().c_str());
    return kExitRuntime;
  }
  PrintFitSummary(snapshot->checkpoint, snapshot->result);
  std::printf(
      "serving %d users / %d edges on http://127.0.0.1:%d "
      "(threads=%d cache=%dMB top_k=%d)\n",
      server.model()->num_users(), server.model()->num_edges(), server.port(),
      options.threads, options.cache_mb, options.top_k);

  // Live ingest daemon: attach the spool watcher before entering the serve
  // loop. Start() validates the spool synchronously, so a typo'd or
  // unwritable directory aborts startup here — never inside the watcher
  // thread. `referents` must outlive the ingestor (the ModelInput borrows
  // it), hence the declaration order.
  const auto referents = world->vocab.ReferentTable();
  std::unique_ptr<stream::LiveIngestor> ingestor;
  if (!spool.empty()) {
    live.read_model.top_k = options.top_k;
    ingestor = std::make_unique<stream::LiveIngestor>(
        &server, FullInput(*world, referents), snapshot->checkpoint,
        snapshot->result, live);
    Status live_started = ingestor->Start();
    if (!live_started.ok()) {
      std::fprintf(stderr, "live ingest failed: %s\n",
                   live_started.ToString().c_str());
      server.Stop();
      return kExitRuntime;
    }
    std::printf("live ingest: watching %s (poll %dms%s)\n", spool.c_str(),
                live.poll_ms,
                live.checkpoint_path.empty() ? ""
                                             : ", checkpoint on drain");
    std::fflush(stdout);
  }

  if (selfcheck) {
    int rc = RunSelfcheck(server, *snapshot, world->data->graph, options);
    if (ingestor != nullptr) ingestor->Stop();
    server.Stop();
    return rc;
  }
  return ServeLoop(server, ingestor.get());
}

// ------------------------------------------------------------------ probe
// Minimal HTTP client over the server's own socket code (serve::HttpFetch)
// — the curl-free query hammer and endpoint scraper the CI live-pipeline
// job uses: fetch --target --count times, fail on any non-2xx, write the
// last body to --out for follow-on assertions.
int CmdProbe(const std::map<std::string, std::string>& flags) {
  if (flags.count("port") == 0) return UsageFor("probe");
  NumericFlags numeric(flags, "probe");
  const int port = numeric.Int("port", 0);
  const int count = std::max(1, numeric.Int("count", 1));
  const int interval_ms = std::max(0, numeric.Int("interval_ms", 0));
  if (!numeric.ok()) return UsageFor("probe");
  const std::string host = FlagOr(flags, "host", "127.0.0.1");
  const std::string target = FlagOr(flags, "target", "/healthz");
  const std::string out = FlagOr(flags, "out", "");

  std::string last_body;
  for (int i = 0; i < count; ++i) {
    Result<serve::HttpResponse> response =
        serve::HttpFetch(host, port, "GET", target);
    if (!response.ok()) {
      std::fprintf(stderr, "probe %s:%d %s failed after %d requests: %s\n",
                   host.c_str(), port, target.c_str(), i,
                   response.status().ToString().c_str());
      return kExitRuntime;
    }
    if (response->status < 200 || response->status >= 300) {
      std::fprintf(stderr, "probe %s: non-2xx (%d) on request %d/%d\n",
                   target.c_str(), response->status, i + 1, count);
      return kExitRuntime;
    }
    last_body = std::move(response->body);
    if (interval_ms > 0 && i + 1 < count) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "probe: cannot write %s\n", out.c_str());
      return kExitRuntime;
    }
    std::fwrite(last_body.data(), 1, last_body.size(), f);
    std::fclose(f);
  }
  std::printf("probe %s x%d: all 2xx\n", target.c_str(), count);
  return kExitOk;
}

// ------------------------------------------------------------------- pack
// Builds the in-memory read model for a fitted snapshot (same
// fingerprint-checked path serve uses) and appends it to the .snap file as
// the mmap-able serve section `mlpctl serve --mmap` maps. Idempotent:
// re-packing replaces the existing section.
int CmdPack(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "data", "");
  const std::string load = FlagOr(flags, "load", "");
  if (dir.empty() || load.empty()) return UsageFor("pack");
  NumericFlags numeric(flags, "pack");
  serve::ReadModelOptions model_options;
  model_options.top_k = numeric.Int("top_k", 10);
  if (!numeric.ok()) return UsageFor("pack");

  Result<LoadedWorld> world = LoadWorld(dir);
  if (!world.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 world.status().ToString().c_str());
    return kExitRuntime;
  }
  Result<io::ModelSnapshot> snapshot = LoadSnapshotChecked(*world, load);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 snapshot.status().ToString().c_str());
    return kExitRuntime;
  }
  Result<serve::ReadModel> model =
      serve::ReadModel::Build(*snapshot, world->data->graph,
                              &world->gazetteer, model_options);
  if (!model.ok()) {
    std::fprintf(stderr, "read model build failed: %s\n",
                 model.status().ToString().c_str());
    return kExitRuntime;
  }
  std::error_code ec;
  const uint64_t before = std::filesystem::file_size(load, ec);
  Status packed = model->AppendServeSection(load);
  if (!packed.ok()) {
    std::fprintf(stderr, "pack failed: %s\n", packed.ToString().c_str());
    return kExitRuntime;
  }
  const uint64_t after = std::filesystem::file_size(load, ec);
  std::printf(
      "packed serve section -> %s (%d users, %d edges, +%llu bytes, "
      "%llu total)\n",
      load.c_str(), model->num_users(), model->num_edges(),
      static_cast<unsigned long long>(after - std::min(before, after)),
      static_cast<unsigned long long>(after));
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  // Global verbosity: MLP_LOG_LEVEL (read at static init) set the
  // baseline; an explicit --log_level on any subcommand overrides it.
  if (auto it = flags.find("log_level"); it != flags.end()) {
    mlp::LogLevel level;
    if (!mlp::ParseLogLevel(it->second, &level)) {
      std::fprintf(stderr,
                   "mlpctl: unknown --log_level '%s' "
                   "(expected debug|info|warn|error)\n",
                   it->second.c_str());
      return kExitUsage;
    }
    mlp::SetLogLevel(level);
  }
  if (command == "generate") return CmdGenerate(flags);
  if (command == "genworld") return CmdGenWorld(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "eval") return CmdEval(flags);
  if (command == "fit") return CmdFit(flags);
  if (command == "resume") return CmdResume(flags);
  if (command == "ingest") return CmdIngest(flags);
  if (command == "pack") return CmdPack(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "probe") return CmdProbe(flags);
  std::fprintf(stderr, "mlpctl: unknown subcommand '%s'\n", command.c_str());
  return Usage();
}
