// mlpctl — command-line front end for the library.
//
//   mlpctl generate --users 4000 --seed 42 --out DIR
//       Generate a synthetic Twitter world and save it (with ground truth)
//       as CSV under DIR.
//   mlpctl stats --data DIR
//       Print dataset statistics for a saved world.
//   mlpctl eval --data DIR [--folds 5] [--method MLP]
//       K-fold home-prediction evaluation of one method (BaseU, BaseC,
//       MLP_U, MLP_C, MLP) or of the full Table-2 lineup (--method all).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "common/string_util.h"
#include "eval/cross_validation.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "graph/graph_stats.h"
#include "io/dataset_io.h"
#include "io/table_printer.h"
#include "synth/world_generator.h"
#include "text/venue_vocab.h"

namespace {

using namespace mlp;

// Parses "--key value", "--key=value" and bare boolean "--key" flags. A
// token starting with "--" is never consumed as a value, and "=" binds a
// value to its own flag explicitly, so a boolean flag directly followed by
// another "--" flag can no longer steal or shift the next flag's value.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    std::string token = argv[i] + 2;
    std::string::size_type eq = token.find('=');
    if (eq != std::string::npos) {
      flags[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    std::string value = "1";
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    flags[token] = value;
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mlpctl generate --users N [--seed S] --out DIR\n"
               "  mlpctl stats --data DIR\n"
               "  mlpctl eval --data DIR [--folds K] [--method NAME|all]\n"
               "              [--threads N]\n");
  return 2;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  std::string out = FlagOr(flags, "out", "");
  if (out.empty()) return Usage();
  synth::WorldConfig config;
  config.num_users = std::atoi(FlagOr(flags, "users", "4000").c_str());
  config.seed = std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  Result<synth::SyntheticWorld> world = synth::GenerateWorld(config);
  if (!world.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  std::error_code ec;
  std::filesystem::create_directories(out, ec);
  Status saved = io::SaveDataset(out, *world->graph, &world->truth);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d users, %d following, %d tweeting to %s\n",
              world->graph->num_users(), world->graph->num_following(),
              world->graph->num_tweeting(), out.c_str());
  return 0;
}

struct LoadedWorld {
  geo::Gazetteer gazetteer = geo::Gazetteer::FromEmbedded();
  std::unique_ptr<geo::CityDistanceMatrix> distances;
  text::VenueVocabulary vocab = text::VenueVocabulary::Build(gazetteer);
  std::unique_ptr<io::LoadedDataset> data;
};

Result<LoadedWorld> LoadWorld(const std::string& dir) {
  LoadedWorld world;
  world.distances =
      std::make_unique<geo::CityDistanceMatrix>(world.gazetteer, 1.0);
  Result<io::LoadedDataset> data = io::LoadDataset(dir, world.vocab.size());
  if (!data.ok()) return data.status();
  world.data = std::make_unique<io::LoadedDataset>(std::move(*data));
  return world;
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "data", "");
  if (dir.empty()) return Usage();
  Result<LoadedWorld> world = LoadWorld(dir);
  if (!world.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  graph::GraphStats stats = graph::ComputeGraphStats(world->data->graph);
  io::TablePrinter table({"statistic", "value"});
  table.AddRow({"users", std::to_string(stats.num_users)});
  table.AddRow({"labeled users", std::to_string(stats.num_labeled)});
  table.AddRow({"following relationships",
                std::to_string(stats.num_following)});
  table.AddRow({"tweeting relationships", std::to_string(stats.num_tweeting)});
  table.AddRow({"avg friends/user",
                StringPrintf("%.1f", stats.avg_friends_per_user)});
  table.AddRow({"avg venues/user",
                StringPrintf("%.1f", stats.avg_venues_per_user)});
  auto referents = world->vocab.ReferentTable();
  table.AddRow({"neighbor location coverage",
                StringPrintf("%.2f", graph::NeighborLocationCoverage(
                                         world->data->graph, referents))});
  table.Print();
  return 0;
}

int CmdEval(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "data", "");
  if (dir.empty()) return Usage();
  int folds = std::atoi(FlagOr(flags, "folds", "5").c_str());
  std::string method = FlagOr(flags, "method", "all");
  int threads = std::atoi(FlagOr(flags, "threads", "1").c_str());
  if (threads < 1) threads = 1;

  Result<LoadedWorld> world = LoadWorld(dir);
  if (!world.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  auto referents = world->vocab.ReferentTable();
  std::vector<geo::CityId> registered =
      eval::RegisteredHomes(world->data->graph);
  eval::FoldAssignment assignment = eval::MakeKFolds(registered, 5, 17);
  if (folds < 1) folds = 1;
  if (folds > 5) folds = 5;

  core::MlpConfig config;
  config.burn_in_iterations = 10;
  config.sampling_iterations = 14;
  io::TablePrinter table({"method", "ACC@100", "ACC@20"});
  for (const eval::NamedMethod& nm : eval::StandardLineup(config, threads)) {
    if (method != "all" && nm.name != method) continue;
    double acc100 = 0.0, acc20 = 0.0;
    for (int fold = 0; fold < folds; ++fold) {
      core::ModelInput input;
      input.gazetteer = &world->gazetteer;
      input.graph = &world->data->graph;
      input.distances = world->distances.get();
      input.venue_referents = &referents;
      input.observed_home = assignment.MaskedHomes(registered, fold);
      Result<eval::MethodOutput> out = nm.method(input);
      if (!out.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", nm.name.c_str(),
                     out.status().ToString().c_str());
        return 1;
      }
      std::vector<graph::UserId> test_users = assignment.TestUsers(fold);
      acc100 += eval::AccuracyWithin(out->home, registered, test_users,
                                     *world->distances, 100.0);
      acc20 += eval::AccuracyWithin(out->home, registered, test_users,
                                    *world->distances, 20.0);
    }
    table.AddRow({nm.name, StringPrintf("%.2f%%", acc100 / folds * 100.0),
                  StringPrintf("%.2f%%", acc20 / folds * 100.0)});
  }
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "eval") return CmdEval(flags);
  return Usage();
}
